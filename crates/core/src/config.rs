//! Declarative experiment configuration.

use hetsched_net::NetworkModel;
use hetsched_platform::{FailureModel, Platform, SpeedDistribution, SpeedModel};
use hetsched_sim::Topology;

/// Which kernel to schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Outer product of two vectors of `n` blocks (`n²` tasks).
    Outer { n: usize },
    /// Multiplication of two `n × n`-block matrices (`n³` tasks).
    Matmul { n: usize },
}

impl Kernel {
    /// Blocks per dimension.
    pub fn n(&self) -> usize {
        match *self {
            Kernel::Outer { n } | Kernel::Matmul { n } => n,
        }
    }

    /// Total number of elementary tasks.
    pub fn total_tasks(&self) -> usize {
        match *self {
            Kernel::Outer { n } => n * n,
            Kernel::Matmul { n } => n * n * n,
        }
    }

    /// Communication lower bound on `platform`, in blocks.
    pub fn lower_bound(&self, platform: &Platform) -> f64 {
        match *self {
            Kernel::Outer { n } => hetsched_platform::outer_lower_bound(n, platform),
            Kernel::Matmul { n } => hetsched_platform::matmul_lower_bound(n, platform),
        }
    }
}

/// How the two-phase strategies pick their switch-over threshold.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BetaChoice {
    /// Minimize the analytic ratio for the *actual* platform draw.
    Analytic,
    /// Minimize the analytic ratio for a homogeneous platform with the same
    /// `p` and `n` (§3.6 — the speed-agnostic choice a runtime would make).
    Homogeneous,
    /// Use this β directly (`threshold = e^{−β}·task-count`).
    Fixed(f64),
    /// Process this fraction of the tasks in phase 1 (Fig. 2's x-axis).
    Phase1Fraction(f64),
}

/// Scheduling strategy, orthogonal to the kernel (except `Static`, which
/// only exists for the outer product).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Strategy {
    /// `RandomOuter` / `RandomMatrix`.
    Random,
    /// `SortedOuter` / `SortedMatrix`.
    Sorted,
    /// `DynamicOuter` / `DynamicMatrix`.
    Dynamic,
    /// `DynamicOuter2Phases` / `DynamicMatrix2Phases`.
    TwoPhase(BetaChoice),
    /// `StaticOuter`: the speed-aware 7/4-approximation square partition
    /// (the paper's reference \[2\], used here as a measured comparison
    /// basis). Outer product only; the partition is computed from the
    /// run's platform speeds — i.e. it assumes *perfect* speed knowledge.
    Static,
}

impl Strategy {
    /// Display label matching the paper's figure legends.
    pub fn label(&self, kernel: Kernel) -> &'static str {
        match (self, kernel) {
            (Strategy::Random, Kernel::Outer { .. }) => "RandomOuter",
            (Strategy::Sorted, Kernel::Outer { .. }) => "SortedOuter",
            (Strategy::Dynamic, Kernel::Outer { .. }) => "DynamicOuter",
            (Strategy::TwoPhase(_), Kernel::Outer { .. }) => "DynamicOuter2Phases",
            (Strategy::Random, Kernel::Matmul { .. }) => "RandomMatrix",
            (Strategy::Sorted, Kernel::Matmul { .. }) => "SortedMatrix",
            (Strategy::Dynamic, Kernel::Matmul { .. }) => "DynamicMatrix",
            (Strategy::TwoPhase(_), Kernel::Matmul { .. }) => "DynamicMatrix2Phases",
            (Strategy::Static, Kernel::Outer { .. }) => "StaticOuter",
            (Strategy::Static, Kernel::Matmul { .. }) => "StaticOuter(unsupported)",
        }
    }
}

/// A complete, seedable experiment description.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Kernel and problem size.
    pub kernel: Kernel,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Number of workers.
    pub processors: usize,
    /// How base speeds are drawn (ignored when `platform` is set).
    pub distribution: SpeedDistribution,
    /// Run-time speed behaviour (fixed or `dyn.*` jitter).
    pub speed_model: SpeedModel,
    /// Optional fixed platform, for sweeps that must hold the speed draw
    /// constant across configurations (Figs. 2, 6, 11). When `None`, each
    /// trial draws a fresh platform from `distribution`.
    pub platform: Option<Platform>,
    /// Injected worker failures and stragglers. [`FailureModel::none`]
    /// (the default) leaves every run bit-for-bit identical to the
    /// fault-unaware engine.
    pub failures: FailureModel,
    /// How the master's outbound link prices transfers.
    /// [`NetworkModel::Infinite`] (the default) keeps the paper's
    /// free-communication model bit for bit.
    pub network: NetworkModel,
    /// Uniform per-worker link latency, applied to the run's platform under
    /// priced network models (ignored under [`NetworkModel::Infinite`]).
    pub link_latency: f64,
    /// Optional per-worker outbound bandwidth caps (blocks per unit time),
    /// one per processor. Only meaningful under
    /// [`NetworkModel::BoundedMultiport`], where worker `k`'s transfers are
    /// priced at `min(link_bandwidths[k], master_bw)` instead of the
    /// model's uniform `worker_bw`. `None` (the default) keeps the uniform
    /// cap bit for bit.
    pub link_bandwidths: Option<Vec<f64>>,
    /// Master/worker wiring. [`Topology::Flat`] (the default) is the
    /// paper's single-master star; [`Topology::Tree`] routes the run
    /// through the hierarchical multi-master engine
    /// ([`hetsched_sim::run_tree`]), with a single sub-master being
    /// bit-for-bit identical to flat.
    pub topology: Topology,
    /// Charge each batch's result write-back (one C block per task) on the
    /// master link, contending with input transfers. Requires a priced
    /// network model; `false` (the default) keeps the return path free and
    /// every existing run bit for bit.
    pub price_returns: bool,
    /// Worker threads for the tree shard engines (ignored under
    /// [`Topology::Flat`]). `None` (the default) runs shards serially —
    /// the right choice inside an already-parallel trial sweep. Results
    /// are bit-identical for every value; see
    /// [`hetsched_sim::TreeOpts::threads`].
    pub tree_threads: Option<usize>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            kernel: Kernel::Outer { n: 100 },
            strategy: Strategy::TwoPhase(BetaChoice::Analytic),
            processors: 20,
            distribution: SpeedDistribution::paper_default(),
            speed_model: SpeedModel::Fixed,
            platform: None,
            failures: FailureModel::none(),
            network: NetworkModel::Infinite,
            link_latency: 0.0,
            link_bandwidths: None,
            topology: Topology::Flat,
            price_returns: false,
            tree_threads: None,
        }
    }
}

impl ExperimentConfig {
    /// Validates internal consistency; called by the runner.
    pub fn validate(&self) -> Result<(), String> {
        if self.processors == 0 {
            return Err("experiment needs at least one processor".into());
        }
        if self.kernel.n() == 0 {
            return Err("kernel needs at least one block".into());
        }
        if let Some(pf) = &self.platform {
            if pf.len() != self.processors {
                return Err(format!(
                    "fixed platform has {} processors, config says {}",
                    pf.len(),
                    self.processors
                ));
            }
        }
        if let Strategy::TwoPhase(BetaChoice::Fixed(b)) = self.strategy {
            if !b.is_finite() || b < 0.0 {
                return Err(format!("invalid fixed β: {b}"));
            }
        }
        if let Strategy::TwoPhase(BetaChoice::Phase1Fraction(f)) = self.strategy {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("phase-1 fraction {f} outside [0, 1]"));
            }
        }
        if matches!(
            (self.strategy, self.kernel),
            (Strategy::Static, Kernel::Matmul { .. })
        ) {
            return Err("Static partitioning is implemented for the outer product only".into());
        }
        self.failures.validate(self.processors)?;
        self.network.validate()?;
        if !self.link_latency.is_finite() || self.link_latency < 0.0 {
            return Err(format!(
                "link latency {} must be non-negative and finite",
                self.link_latency
            ));
        }
        if let Some(bws) = &self.link_bandwidths {
            if !matches!(self.network, NetworkModel::BoundedMultiport { .. }) {
                return Err("per-worker link bandwidths require the bounded-multiport \
                     network model"
                    .into());
            }
            if bws.len() != self.processors {
                return Err(format!(
                    "got {} per-worker link bandwidths for {} processors",
                    bws.len(),
                    self.processors
                ));
            }
            if bws.iter().any(|b| !b.is_finite() || *b <= 0.0) {
                return Err("per-worker link bandwidths must be positive and finite".into());
            }
        }
        if (!self.failures.failures().is_empty() || self.failures.has_stochastic())
            && self.strategy == Strategy::Static
        {
            return Err(
                "Static partitioning fixes the allocation up front and cannot \
                 re-allocate tasks lost to a worker failure"
                    .into(),
            );
        }
        if self.price_returns {
            if self.network.is_infinite() {
                return Err(
                    "return-path pricing needs a priced network model (transfers \
                     are free under the infinite network)"
                        .into(),
                );
            }
            if !self.topology.is_flat() {
                return Err("return-path pricing is flat-only for now: the tree engine \
                     does not route write-backs over the root link yet"
                    .into());
            }
        }
        self.topology.validate(self.processors)?;
        if let Some(0) = self.tree_threads {
            return Err("tree shard threads must be at least 1 (or unset for serial)".into());
        }
        // Each tree shard runs its own flat engine, and a flat engine needs
        // a survivor: a scenario that kills every worker of one shard would
        // trip the engine's own assert deep inside the run. The shard
        // slices depend only on p and the sub-master count, so we can check
        // here, before any engine spins up.
        let submasters = self.topology.submasters();
        if submasters > 1 {
            let p = self.processors;
            let base = p / submasters;
            let extra = p % submasters;
            let mut start = 0usize;
            for j in 0..submasters {
                let len = base + usize::from(j < extra);
                let range = start..start + len;
                let doomed = |k: usize| {
                    self.failures.failures().iter().any(|&(w, _)| w.idx() == k)
                        || self
                            .failures
                            .exp_failures()
                            .iter()
                            .any(|&(w, _)| w.idx() == k)
                };
                if range.clone().all(doomed) {
                    return Err(format!(
                        "failure scenario kills every worker of tree shard {j} \
                         (workers {}..{}): each shard needs a survivor",
                        range.start, range.end
                    ));
                }
                start += len;
            }
        }
        if !self.topology.is_flat() && self.strategy == Strategy::Static {
            return Err(
                "Static partitioning is flat-only: the tree topology already \
                 partitions the grid statically at its root, and the shards \
                 run the dynamic strategies"
                    .into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_task_counts() {
        assert_eq!(Kernel::Outer { n: 100 }.total_tasks(), 10_000);
        assert_eq!(Kernel::Matmul { n: 40 }.total_tasks(), 64_000);
        assert_eq!(Kernel::Matmul { n: 100 }.total_tasks(), 1_000_000);
    }

    #[test]
    fn labels_match_paper() {
        let o = Kernel::Outer { n: 1 };
        let m = Kernel::Matmul { n: 1 };
        assert_eq!(Strategy::Random.label(o), "RandomOuter");
        assert_eq!(Strategy::Sorted.label(m), "SortedMatrix");
        assert_eq!(
            Strategy::TwoPhase(BetaChoice::Analytic).label(o),
            "DynamicOuter2Phases"
        );
        assert_eq!(Strategy::Dynamic.label(m), "DynamicMatrix");
    }

    #[test]
    fn default_is_valid() {
        assert!(ExperimentConfig::default().validate().is_ok());
    }

    #[test]
    fn static_matmul_rejected() {
        let cfg = ExperimentConfig {
            kernel: Kernel::Matmul { n: 4 },
            strategy: Strategy::Static,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let ok = ExperimentConfig {
            strategy: Strategy::Static,
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let cfg = ExperimentConfig {
            processors: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = ExperimentConfig {
            strategy: Strategy::TwoPhase(BetaChoice::Fixed(-1.0)),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = ExperimentConfig {
            strategy: Strategy::TwoPhase(BetaChoice::Phase1Fraction(1.5)),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig {
            platform: Some(Platform::homogeneous(3)),
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "platform size mismatch");
        cfg.processors = 3;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn failure_scenarios_validated() {
        use hetsched_platform::ProcId;
        let cfg = ExperimentConfig {
            failures: FailureModel::none().fail_at(ProcId(25), 1.0),
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "worker index out of range (p=20)");

        let cfg = ExperimentConfig {
            failures: FailureModel::none().fail_at(ProcId(3), 2.0),
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());

        // Static cannot reassign lost tasks...
        let cfg = ExperimentConfig {
            strategy: Strategy::Static,
            failures: FailureModel::none().fail_at(ProcId(3), 2.0),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        // ...but stragglers only change speeds, which it tolerates.
        let cfg = ExperimentConfig {
            strategy: Strategy::Static,
            failures: FailureModel::none().slow_down(ProcId(3), 4.0),
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());

        // Stochastic fail-stops validate like fixed ones.
        let cfg = ExperimentConfig {
            failures: FailureModel::none().fail_exponential(ProcId(3), 10.0),
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());
        let cfg = ExperimentConfig {
            failures: FailureModel::none().fail_exponential(ProcId(25), 10.0),
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "exp worker index out of range");
        let cfg = ExperimentConfig {
            strategy: Strategy::Static,
            failures: FailureModel::none().fail_exponential(ProcId(3), 10.0),
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "static cannot absorb exp failures");
    }

    #[test]
    fn return_pricing_validated() {
        let cfg = ExperimentConfig {
            price_returns: true,
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "needs a priced network");

        let cfg = ExperimentConfig {
            price_returns: true,
            network: NetworkModel::OnePort { master_bw: 50.0 },
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());

        let cfg = ExperimentConfig {
            price_returns: true,
            network: NetworkModel::OnePort { master_bw: 50.0 },
            topology: Topology::Tree { submasters: 2 },
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "flat-only for now");
    }

    #[test]
    fn topology_configs_validated() {
        let cfg = ExperimentConfig {
            topology: Topology::Tree { submasters: 4 },
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());

        let cfg = ExperimentConfig {
            topology: Topology::Tree { submasters: 25 },
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "more sub-masters than workers");

        let cfg = ExperimentConfig {
            topology: Topology::Tree { submasters: 0 },
            ..Default::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = ExperimentConfig {
            strategy: Strategy::Static,
            topology: Topology::Tree { submasters: 1 },
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "static is flat-only");
    }

    #[test]
    fn tree_threads_validated() {
        let cfg = ExperimentConfig {
            topology: Topology::Tree { submasters: 4 },
            tree_threads: Some(2),
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());

        let cfg = ExperimentConfig {
            topology: Topology::Tree { submasters: 4 },
            tree_threads: Some(0),
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "zero threads rejected");
    }

    #[test]
    fn shard_killing_failure_scenarios_rejected() {
        use hetsched_platform::ProcId;
        // p = 4, 2 sub-masters → shards {0,1} and {2,3}. Killing both
        // workers of shard 0 must be rejected up front, not panic later.
        let cfg = ExperimentConfig {
            processors: 4,
            topology: Topology::Tree { submasters: 2 },
            failures: FailureModel::none()
                .fail_at(ProcId(0), 0.0)
                .fail_at(ProcId(1), 0.0),
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("shard 0"), "got: {err}");
        assert!(err.contains("survivor"), "got: {err}");

        // Same deaths spread across shards: each shard keeps a survivor.
        let cfg = ExperimentConfig {
            processors: 4,
            topology: Topology::Tree { submasters: 2 },
            failures: FailureModel::none()
                .fail_at(ProcId(0), 0.0)
                .fail_at(ProcId(2), 0.0),
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());

        // Stochastic fail-stops count as potential deaths too.
        let cfg = ExperimentConfig {
            processors: 4,
            topology: Topology::Tree { submasters: 2 },
            failures: FailureModel::none()
                .fail_exponential(ProcId(2), 5.0)
                .fail_exponential(ProcId(3), 5.0),
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("shard 1"), "got: {err}");

        // The same scenario on a flat topology stays valid (flat-level
        // survivor checking already lives in FailureModel::validate).
        let cfg = ExperimentConfig {
            processors: 4,
            failures: FailureModel::none()
                .fail_at(ProcId(0), 0.0)
                .fail_at(ProcId(1), 0.0),
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn network_configs_validated() {
        let cfg = ExperimentConfig {
            network: NetworkModel::OnePort { master_bw: 0.0 },
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "zero bandwidth rejected");

        let cfg = ExperimentConfig {
            network: NetworkModel::OnePort { master_bw: 50.0 },
            link_latency: 0.1,
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());

        let cfg = ExperimentConfig {
            link_latency: -1.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "negative latency rejected");
    }

    #[test]
    fn per_worker_bandwidth_configs_validated() {
        let multiport = NetworkModel::BoundedMultiport {
            master_bw: 40.0,
            worker_bw: 10.0,
        };
        let cfg = ExperimentConfig {
            processors: 3,
            network: multiport,
            link_bandwidths: Some(vec![10.0, 5.0, 20.0]),
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());

        let cfg = ExperimentConfig {
            processors: 3,
            link_bandwidths: Some(vec![10.0, 5.0, 20.0]),
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "needs the multiport model");

        let cfg = ExperimentConfig {
            processors: 4,
            network: multiport,
            link_bandwidths: Some(vec![10.0, 5.0]),
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "one bandwidth per processor");

        let cfg = ExperimentConfig {
            processors: 2,
            network: multiport,
            link_bandwidths: Some(vec![10.0, 0.0]),
            ..Default::default()
        };
        assert!(cfg.validate().is_err(), "bandwidths must be positive");
    }

    #[test]
    fn lower_bound_dispatch() {
        let pf = Platform::homogeneous(4);
        assert!((Kernel::Outer { n: 10 }.lower_bound(&pf) - 2.0 * 10.0 * 2.0).abs() < 1e-9);
        let expected = 3.0 * 100.0 * 4.0 * 0.25f64.powf(2.0 / 3.0);
        assert!((Kernel::Matmul { n: 10 }.lower_bound(&pf) - expected).abs() < 1e-9);
    }
}
