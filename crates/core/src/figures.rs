//! One function per figure of the paper.
//!
//! Every function regenerates the *data* behind the corresponding figure:
//! the plotted series of normalized communication volumes (mean ± std-dev
//! over seeded trials). Figure 3 is a schematic illustration in the paper
//! and has no data to regenerate.
//!
//! The `quick` flag in [`FigOpts`] shrinks problem sizes and grids by about
//! an order of magnitude so the full suite stays usable in tests and
//! Criterion benches; the default options match the paper's parameters.

use crate::config::{BetaChoice, ExperimentConfig, Kernel, Strategy};
use crate::runner::{
    parallel_map, platform_for, run_once, run_trials_with_threads, summarize_runs, trial_seed,
};
use crate::series::{FigureData, Series};
use hetsched_analysis::{MatmulAnalysis, OuterAnalysis};
use hetsched_platform::{Platform, Scenario, SpeedDistribution, SpeedModel};
use hetsched_util::rng::rng_for;
use hetsched_util::OnlineStats;

/// Options shared by every figure function.
#[derive(Clone, Copy, Debug)]
pub struct FigOpts {
    /// Trials per point (the paper uses "10 or more").
    pub trials: usize,
    /// Trials for the heterogeneity studies, Figs. 7–8 (the paper uses 50).
    pub hetero_trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Shrink problem sizes/grids for smoke tests and benches.
    pub quick: bool,
    /// Worker threads for the per-point sweeps (`None` = machine default).
    /// Results are bit-for-bit identical for every value — every trial's
    /// RNG is seeded from its index, never from its thread.
    pub threads: Option<usize>,
}

impl Default for FigOpts {
    fn default() -> Self {
        FigOpts {
            trials: 10,
            hetero_trials: 50,
            seed: 0xBEA0_2014,
            quick: false,
            threads: None,
        }
    }
}

impl FigOpts {
    /// Paper-scale options.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Reduced options for tests and benches.
    pub fn quick() -> Self {
        FigOpts {
            trials: 3,
            hetero_trials: 5,
            seed: 0xBEA0_2014,
            quick: true,
            threads: None,
        }
    }

    /// Same options with a pinned thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }
}

/// The processor-count grid for the `p`-sweep figures.
fn p_grid(opts: &FigOpts) -> Vec<usize> {
    if opts.quick {
        vec![10, 50, 150]
    } else {
        vec![10, 20, 50, 100, 150, 200, 250, 300]
    }
}

/// Adds one simulated series (`strategy` over `xs` many processor counts).
///
/// The whole `p × trial` grid fans out through [`parallel_map`]; every
/// trial's RNG is derived from `(seed, trial index)` exactly as in
/// `run_trials`, so the series is bit-for-bit independent of `threads`.
fn p_sweep_series(
    kernel: Kernel,
    strategy: Strategy,
    ps: &[usize],
    trials: usize,
    seed: u64,
    threads: Option<usize>,
) -> Series {
    let jobs: Vec<(usize, usize)> = ps
        .iter()
        .flat_map(|&p| (0..trials).map(move |i| (p, i)))
        .collect();
    let results = parallel_map(&jobs, threads, |_, &(p, i)| {
        let cfg = ExperimentConfig {
            kernel,
            strategy,
            processors: p,
            ..Default::default()
        };
        run_once(&cfg, trial_seed(seed, i))
    });
    let mut s = Series::new(strategy.label(kernel));
    for (pi, &p) in ps.iter().enumerate() {
        let sum = summarize_runs(&results[pi * trials..(pi + 1) * trials]);
        s.push(
            p as f64,
            sum.normalized_comm.mean(),
            sum.normalized_comm.std_dev(),
        );
    }
    s
}

/// Analysis curve over a `p` sweep: for each processor count, evaluate the
/// analytic ratio at its optimal β on exactly the platforms the simulated
/// trials drew, and average.
fn p_sweep_analysis(
    kernel: Kernel,
    ps: &[usize],
    trials: usize,
    seed: u64,
    threads: Option<usize>,
) -> Series {
    let jobs: Vec<(usize, usize)> = ps
        .iter()
        .flat_map(|&p| (0..trials).map(move |i| (p, i)))
        .collect();
    let ratios = parallel_map(&jobs, threads, |_, &(p, i)| {
        let cfg = ExperimentConfig {
            kernel,
            processors: p,
            ..Default::default()
        };
        let pf = platform_for(&cfg, trial_seed(seed, i));
        match kernel {
            Kernel::Outer { n } => OuterAnalysis::new(&pf, n).optimal_beta().1,
            Kernel::Matmul { n } => MatmulAnalysis::new(&pf, n).optimal_beta().1,
        }
    });
    let mut s = Series::new("Analysis");
    for (pi, &p) in ps.iter().enumerate() {
        let mut stats = OnlineStats::new();
        for &r in &ratios[pi * trials..(pi + 1) * trials] {
            stats.push(r);
        }
        s.push(p as f64, stats.mean(), stats.std_dev());
    }
    s
}

/// A horizontal reference series: the same trial summary replicated at
/// every swept x (the paper draws these strategies as flat lines on the
/// sweep figures).
fn constant_series(label: &str, xs: &[f64], mean: f64, std_dev: f64) -> Series {
    let mut s = Series::new(label);
    for &x in xs {
        s.push(x, mean, std_dev);
    }
    s
}

/// Figure 1: outer product, `n = 100`, data-aware vs oblivious strategies
/// over the processor count.
pub fn fig1(opts: &FigOpts) -> FigureData {
    let n = if opts.quick { 40 } else { 100 };
    let kernel = Kernel::Outer { n };
    let ps = p_grid(opts);
    let series = [Strategy::Dynamic, Strategy::Random, Strategy::Sorted]
        .into_iter()
        .map(|st| p_sweep_series(kernel, st, &ps, opts.trials, opts.seed, opts.threads))
        .collect();
    FigureData {
        id: "fig1",
        title: format!("Outer product, n={n}: data-aware vs random strategies"),
        x_label: "processors".into(),
        y_label: "normalized communication".into(),
        series,
    }
}

/// Figure 2: outer product, `p = 20`, `n = 100`, one fixed speed draw;
/// communication of `DynamicOuter2Phases` as a function of the percentage
/// of tasks processed in phase 1, against the three single-phase
/// strategies.
pub fn fig2(opts: &FigOpts) -> FigureData {
    let (n, p) = if opts.quick { (40, 10) } else { (100, 20) };
    let platform = Platform::sample(
        p,
        &SpeedDistribution::paper_default(),
        &mut rng_for(opts.seed, 0x0F12),
    );
    let base = ExperimentConfig {
        kernel: Kernel::Outer { n },
        processors: p,
        platform: Some(platform),
        ..Default::default()
    };

    let fractions: Vec<f64> = if opts.quick {
        vec![0.0, 0.5, 0.9, 1.0]
    } else {
        (0..=20).map(|i| i as f64 / 20.0).collect()
    };
    let xs: Vec<f64> = fractions.iter().map(|f| f * 100.0).collect();

    let mut two = Series::new("DynamicOuter2Phases");
    for (&f, &x) in fractions.iter().zip(&xs) {
        let cfg = ExperimentConfig {
            strategy: Strategy::TwoPhase(BetaChoice::Phase1Fraction(f)),
            ..base.clone()
        };
        let sum = run_trials_with_threads(&cfg, opts.trials, opts.seed, opts.threads);
        two.push(x, sum.normalized_comm.mean(), sum.normalized_comm.std_dev());
    }

    let mut series = vec![two];
    for st in [Strategy::Dynamic, Strategy::Random, Strategy::Sorted] {
        let cfg = ExperimentConfig {
            strategy: st,
            ..base.clone()
        };
        let sum = run_trials_with_threads(&cfg, opts.trials, opts.seed, opts.threads);
        series.push(constant_series(
            st.label(base.kernel),
            &xs,
            sum.normalized_comm.mean(),
            sum.normalized_comm.std_dev(),
        ));
    }

    FigureData {
        id: "fig2",
        title: format!("Outer product, p={p}, n={n}: two-phase communication vs phase-1 share"),
        x_label: "% tasks in phase 1".into(),
        y_label: "normalized communication".into(),
        series,
    }
}

/// Figures 4 and 5 share their shape; `n` differs.
fn outer_full_comparison(id: &'static str, n: usize, opts: &FigOpts) -> FigureData {
    let kernel = Kernel::Outer { n };
    let ps = p_grid(opts);
    let mut series = vec![p_sweep_series(
        kernel,
        Strategy::TwoPhase(BetaChoice::Analytic),
        &ps,
        opts.trials,
        opts.seed,
        opts.threads,
    )];
    series.push(p_sweep_analysis(
        kernel,
        &ps,
        opts.trials,
        opts.seed,
        opts.threads,
    ));
    for st in [Strategy::Dynamic, Strategy::Random, Strategy::Sorted] {
        series.push(p_sweep_series(
            kernel,
            st,
            &ps,
            opts.trials,
            opts.seed,
            opts.threads,
        ));
    }
    FigureData {
        id,
        title: format!("Outer product, n={n}: all strategies and the analysis"),
        x_label: "processors".into(),
        y_label: "normalized communication".into(),
        series,
    }
}

/// Figure 4: all outer-product strategies plus the analysis, `n = 100`.
pub fn fig4(opts: &FigOpts) -> FigureData {
    let n = if opts.quick { 40 } else { 100 };
    outer_full_comparison("fig4", n, opts)
}

/// Figure 5: all outer-product strategies plus the analysis, `n = 1000`.
pub fn fig5(opts: &FigOpts) -> FigureData {
    let n = if opts.quick { 200 } else { 1000 };
    outer_full_comparison("fig5", n, opts)
}

/// Figure 6: outer product, `p = 20`, `n = 100`, one fixed speed draw;
/// two-phase communication and its analysis as functions of β.
pub fn fig6(opts: &FigOpts) -> FigureData {
    let (n, p) = if opts.quick { (40, 10) } else { (100, 20) };
    let platform = Platform::sample(
        p,
        &SpeedDistribution::paper_default(),
        &mut rng_for(opts.seed, 0x0F6),
    );
    let betas: Vec<f64> = if opts.quick {
        vec![2.0, 4.0, 6.0]
    } else {
        (3..=18).map(|i| i as f64 * 0.5).collect()
    };

    let base = ExperimentConfig {
        kernel: Kernel::Outer { n },
        processors: p,
        platform: Some(platform.clone()),
        ..Default::default()
    };

    let mut sim = Series::new("DynamicOuter2Phases");
    for &b in &betas {
        let cfg = ExperimentConfig {
            strategy: Strategy::TwoPhase(BetaChoice::Fixed(b)),
            ..base.clone()
        };
        let sum = run_trials_with_threads(&cfg, opts.trials, opts.seed, opts.threads);
        sim.push(b, sum.normalized_comm.mean(), sum.normalized_comm.std_dev());
    }

    let model = OuterAnalysis::new(&platform, n);
    let mut ana = Series::new("Analysis");
    for &b in &betas {
        ana.push(b, model.ratio(b), 0.0);
    }

    let dyn_cfg = ExperimentConfig {
        strategy: Strategy::Dynamic,
        ..base
    };
    let dyn_sum = run_trials_with_threads(&dyn_cfg, opts.trials, opts.seed, opts.threads);

    FigureData {
        id: "fig6",
        title: format!("Outer product, p={p}, n={n}: communication vs β"),
        x_label: "beta".into(),
        y_label: "normalized communication".into(),
        series: vec![
            ana,
            sim,
            constant_series(
                "DynamicOuter",
                &betas,
                dyn_sum.normalized_comm.mean(),
                dyn_sum.normalized_comm.std_dev(),
            ),
        ],
    }
}

/// Shared body of Figs. 7–8: all four strategies plus the analysis on a
/// list of `(x, distribution, speed-model)` settings.
fn heterogeneity_comparison(
    id: &'static str,
    title: String,
    x_label: String,
    settings: &[(f64, SpeedDistribution, SpeedModel)],
    n: usize,
    p: usize,
    opts: &FigOpts,
) -> FigureData {
    let kernel = Kernel::Outer { n };
    let strategies = [
        Strategy::TwoPhase(BetaChoice::Analytic),
        Strategy::Dynamic,
        Strategy::Random,
        Strategy::Sorted,
    ];
    let mut series: Vec<Series> = vec![Series::new("Analysis")];
    for st in strategies {
        series.push(Series::new(st.label(kernel)));
    }

    let probe_for = |setting: &(f64, SpeedDistribution, SpeedModel)| ExperimentConfig {
        kernel,
        processors: p,
        distribution: setting.1.clone(),
        speed_model: setting.2,
        ..Default::default()
    };
    let trials = opts.hetero_trials;

    // Analysis on the actual draws: one job per (setting, trial).
    let probe_jobs: Vec<(usize, usize)> = (0..settings.len())
        .flat_map(|xi| (0..trials).map(move |i| (xi, i)))
        .collect();
    let ratios = parallel_map(&probe_jobs, opts.threads, |_, &(xi, i)| {
        let pf = platform_for(&probe_for(&settings[xi]), trial_seed(opts.seed, i));
        OuterAnalysis::new(&pf, n).optimal_beta().1
    });
    for (xi, (x, _, _)) in settings.iter().enumerate() {
        let mut ana = OnlineStats::new();
        for &r in &ratios[xi * trials..(xi + 1) * trials] {
            ana.push(r);
        }
        series[0].push(*x, ana.mean(), ana.std_dev());
    }

    // Simulated grid: one job per (setting, strategy, trial), summarized
    // per (setting, strategy) chunk exactly as `run_trials` would.
    let grid_jobs: Vec<(usize, usize, usize)> = (0..settings.len())
        .flat_map(|xi| {
            (0..strategies.len()).flat_map(move |si| (0..trials).map(move |i| (xi, si, i)))
        })
        .collect();
    let runs = parallel_map(&grid_jobs, opts.threads, |_, &(xi, si, i)| {
        let cfg = ExperimentConfig {
            strategy: strategies[si],
            ..probe_for(&settings[xi])
        };
        run_once(&cfg, trial_seed(opts.seed, i))
    });
    for (xi, (x, _, _)) in settings.iter().enumerate() {
        for si in 0..strategies.len() {
            let base = (xi * strategies.len() + si) * trials;
            let sum = summarize_runs(&runs[base..base + trials]);
            series[si + 1].push(
                *x,
                sum.normalized_comm.mean(),
                sum.normalized_comm.std_dev(),
            );
        }
    }

    FigureData {
        id,
        title,
        x_label,
        y_label: "normalized communication".into(),
        series,
    }
}

/// Figure 7: outer product, `p = 20`, `n = 100`; heterogeneity sweep —
/// speeds drawn from `U[100−h, 100+h]`.
pub fn fig7(opts: &FigOpts) -> FigureData {
    let (n, p) = if opts.quick { (40, 10) } else { (100, 20) };
    let hs: Vec<f64> = if opts.quick {
        vec![0.0, 40.0, 80.0]
    } else {
        vec![0.0, 20.0, 40.0, 60.0, 80.0, 99.0]
    };
    let settings: Vec<(f64, SpeedDistribution, SpeedModel)> = hs
        .iter()
        .map(|&h| (h, SpeedDistribution::heterogeneity(h), SpeedModel::Fixed))
        .collect();
    heterogeneity_comparison(
        "fig7",
        format!("Outer product, p={p}, n={n}: impact of the heterogeneity degree"),
        "heterogeneity h".into(),
        &settings,
        n,
        p,
        opts,
    )
}

/// Figure 8: outer product, `p = 20`, `n = 100`; the six named
/// heterogeneity scenarios (x enumerates `unif.1 … dyn.20` in order).
pub fn fig8(opts: &FigOpts) -> FigureData {
    let (n, p) = if opts.quick { (40, 10) } else { (100, 20) };
    let scenarios: &[Scenario] = if opts.quick {
        &[Scenario::Unif2, Scenario::Dyn20]
    } else {
        &Scenario::ALL
    };
    let settings: Vec<(f64, SpeedDistribution, SpeedModel)> = scenarios
        .iter()
        .enumerate()
        .map(|(i, sc)| (i as f64, sc.distribution(), sc.speed_model()))
        .collect();
    let mut fig = heterogeneity_comparison(
        "fig8",
        format!(
            "Outer product, p={p}, n={n}: scenarios {}",
            scenarios
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        "scenario index".into(),
        &settings,
        n,
        p,
        opts,
    );
    fig.id = "fig8";
    fig
}

/// Figures 9 and 10 share their shape; `n` differs.
fn matmul_full_comparison(id: &'static str, n: usize, opts: &FigOpts) -> FigureData {
    let kernel = Kernel::Matmul { n };
    let ps: Vec<usize> = if opts.quick {
        vec![10, 50]
    } else {
        vec![20, 50, 100, 150, 200, 250, 300]
    };
    let mut series = vec![p_sweep_analysis(
        kernel,
        &ps,
        opts.trials,
        opts.seed,
        opts.threads,
    )];
    for st in [
        Strategy::TwoPhase(BetaChoice::Analytic),
        Strategy::Dynamic,
        Strategy::Random,
        Strategy::Sorted,
    ] {
        series.push(p_sweep_series(
            kernel,
            st,
            &ps,
            opts.trials,
            opts.seed,
            opts.threads,
        ));
    }
    FigureData {
        id,
        title: format!("Matrix multiplication, n={n}: all strategies and the analysis"),
        x_label: "processors".into(),
        y_label: "normalized communication".into(),
        series,
    }
}

/// Figure 9: matrix multiplication, `n = 40` (64 000 tasks).
pub fn fig9(opts: &FigOpts) -> FigureData {
    let n = if opts.quick { 16 } else { 40 };
    matmul_full_comparison("fig9", n, opts)
}

/// Figure 10: matrix multiplication, `n = 100` (10⁶ tasks).
pub fn fig10(opts: &FigOpts) -> FigureData {
    let n = if opts.quick { 25 } else { 100 };
    matmul_full_comparison("fig10", n, opts)
}

/// Figure 11: matrix multiplication, `p = 100`, `n = 40`, one fixed speed
/// draw; two-phase communication and its analysis as functions of β.
pub fn fig11(opts: &FigOpts) -> FigureData {
    let (n, p) = if opts.quick { (16, 20) } else { (40, 100) };
    let platform = Platform::sample(
        p,
        &SpeedDistribution::paper_default(),
        &mut rng_for(opts.seed, 0x0F11),
    );
    let betas: Vec<f64> = if opts.quick {
        vec![2.0, 3.0, 5.0]
    } else {
        (3..=20).map(|i| i as f64 * 0.5).collect()
    };

    let base = ExperimentConfig {
        kernel: Kernel::Matmul { n },
        processors: p,
        platform: Some(platform.clone()),
        ..Default::default()
    };

    let mut sim = Series::new("DynamicMatrix2Phases");
    for &b in &betas {
        let cfg = ExperimentConfig {
            strategy: Strategy::TwoPhase(BetaChoice::Fixed(b)),
            ..base.clone()
        };
        let sum = run_trials_with_threads(&cfg, opts.trials, opts.seed, opts.threads);
        sim.push(b, sum.normalized_comm.mean(), sum.normalized_comm.std_dev());
    }

    let model = MatmulAnalysis::new(&platform, n);
    let mut ana = Series::new("Analysis");
    for &b in &betas {
        ana.push(b, model.ratio(b), 0.0);
    }

    let dyn_cfg = ExperimentConfig {
        strategy: Strategy::Dynamic,
        ..base
    };
    let dyn_sum = run_trials_with_threads(&dyn_cfg, opts.trials, opts.seed, opts.threads);

    FigureData {
        id: "fig11",
        title: format!("Matrix multiplication, p={p}, n={n}: communication vs β"),
        x_label: "beta".into(),
        y_label: "normalized communication".into(),
        series: vec![
            ana,
            sim,
            constant_series(
                "DynamicMatrix",
                &betas,
                dyn_sum.normalized_comm.mean(),
                dyn_sum.normalized_comm.std_dev(),
            ),
        ],
    }
}

/// Every figure id, in paper order.
pub const ALL_FIGURES: [&str; 10] = [
    "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
];

/// Regenerates one figure by id.
pub fn by_id(id: &str, opts: &FigOpts) -> Option<FigureData> {
    match id {
        "fig1" => Some(fig1(opts)),
        "fig2" => Some(fig2(opts)),
        "fig4" => Some(fig4(opts)),
        "fig5" => Some(fig5(opts)),
        "fig6" => Some(fig6(opts)),
        "fig7" => Some(fig7(opts)),
        "fig8" => Some(fig8(opts)),
        "fig9" => Some(fig9(opts)),
        "fig10" => Some(fig10(opts)),
        "fig11" => Some(fig11(opts)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These smoke tests run every figure in quick mode and assert the
    // paper's qualitative findings. The full-scale shape checks live in the
    // integration suite and EXPERIMENTS.md.

    #[test]
    fn fig1_quick_ranking() {
        let f = fig1(&FigOpts::quick());
        let d = f.series("DynamicOuter").unwrap().overall_mean();
        let r = f.series("RandomOuter").unwrap().overall_mean();
        let s = f.series("SortedOuter").unwrap().overall_mean();
        assert!(d < r, "dynamic {d} < random {r}");
        assert!(d < s, "dynamic {d} < sorted {s}");
    }

    #[test]
    fn fig2_quick_u_shape_and_bounds() {
        let f = fig2(&FigOpts::quick());
        let two = f.series("DynamicOuter2Phases").unwrap();
        let dynamic = f.series("DynamicOuter").unwrap().overall_mean();
        let random = f.series("RandomOuter").unwrap().overall_mean();
        // 0 % in phase 1 ⇒ pure random; 100 % ⇒ pure dynamic.
        let at0 = two.points.first().unwrap().mean;
        let at100 = two.points.last().unwrap().mean;
        assert!(
            (at0 - random).abs() / random < 0.25,
            "{at0} vs random {random}"
        );
        assert!(
            (at100 - dynamic).abs() / dynamic < 0.25,
            "{at100} vs dynamic {dynamic}"
        );
        // Some intermediate split beats both endpoints.
        let best = two
            .points
            .iter()
            .map(|p| p.mean)
            .fold(f64::INFINITY, f64::min);
        assert!(best <= at0.min(at100) + 1e-9);
    }

    #[test]
    fn fig4_quick_analysis_tracks_two_phase() {
        let f = fig4(&FigOpts::quick());
        let two = f.series("DynamicOuter2Phases").unwrap();
        let ana = f.series("Analysis").unwrap();
        for (pt, pa) in two.points.iter().zip(&ana.points) {
            assert_eq!(pt.x, pa.x);
            assert!(
                (pt.mean - pa.mean).abs() / pt.mean < 0.2,
                "p={}: sim {} vs analysis {}",
                pt.x,
                pt.mean,
                pa.mean
            );
        }
    }

    #[test]
    fn fig6_quick_analysis_tracks_sim_in_interest_domain() {
        let f = fig6(&FigOpts::quick());
        let sim = f.series("DynamicOuter2Phases").unwrap();
        let ana = f.series("Analysis").unwrap();
        for (ps, pa) in sim.points.iter().zip(&ana.points) {
            assert!(
                (ps.mean - pa.mean).abs() / ps.mean < 0.3,
                "β={}: sim {} vs analysis {}",
                ps.x,
                ps.mean,
                pa.mean
            );
        }
    }

    #[test]
    fn fig9_quick_ranking() {
        let f = fig9(&FigOpts::quick());
        let two = f.series("DynamicMatrix2Phases").unwrap().overall_mean();
        let d = f.series("DynamicMatrix").unwrap().overall_mean();
        let r = f.series("RandomMatrix").unwrap().overall_mean();
        assert!(two <= d * 1.05, "two-phase {two} ≲ dynamic {d}");
        assert!(d < r, "dynamic {d} < random {r}");
    }

    #[test]
    fn by_id_covers_all() {
        let opts = FigOpts::quick();
        for id in ALL_FIGURES {
            // Only check dispatch (constructing every figure here would be
            // slow); fig3 must be absent.
            assert!(super::by_id("fig3", &opts).is_none());
            assert!(ALL_FIGURES.contains(&id));
        }
    }
}
