//! Seeded experiment execution: single runs and parallel trial campaigns.

use crate::config::{BetaChoice, ExperimentConfig, Kernel, Strategy};
use crate::shard::{plan_shards, ShardLayout};
use hetsched_analysis::{MatmulAnalysis, OuterAnalysis};
use hetsched_matmul::{DynamicMatrix, DynamicMatrix2Phases, RandomMatrix, SortedMatrix};
use hetsched_outer::{DynamicOuter, DynamicOuter2Phases, RandomOuter, SortedOuter};
use hetsched_platform::Platform;
use hetsched_sim::{
    run_tree_with, Recorder, Scheduler, ShardSpec, SimReport, StreamingSink, Topology, TreeOpts,
    TreeOutcome,
};
use hetsched_util::rng::{derive_seed, rng_for};
use hetsched_util::OnlineStats;
use rand::rngs::StdRng;

/// RNG stream ids, so the platform draw and the scheduling run are
/// independent for a given trial seed.
const STREAM_PLATFORM: u64 = 0x11;
const STREAM_RUN: u64 = 0x22;
const STREAM_FAILURES: u64 = 0x33;

/// Outcome of a single seeded run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total blocks shipped.
    pub total_blocks: u64,
    /// Total blocks divided by the kernel's lower bound on this platform.
    pub normalized_comm: f64,
    /// Simulated completion time.
    pub makespan: f64,
    /// The lower bound used for normalization.
    pub lower_bound: f64,
    /// β actually used, if the strategy was two-phase with a β-derived
    /// threshold.
    pub beta_used: Option<f64>,
    /// `(phase1_blocks, phase2_blocks, phase1_tasks, phase2_tasks)` for
    /// two-phase strategies.
    pub phase_split: Option<(u64, u64, usize, usize)>,
    /// Tasks computed per worker.
    pub tasks_per_proc: Vec<u64>,
    /// Blocks received per worker.
    pub blocks_per_proc: Vec<u64>,
    /// Tasks lost to injected worker failures (0 without fault injection).
    pub lost_tasks: u64,
    /// Blocks re-shipped while re-allocating lost tasks.
    pub reshipped_blocks: u64,
    /// Time each worker spent idle waiting for transfers (all zeros under
    /// the infinite network).
    pub transfer_wait_per_proc: Vec<f64>,
    /// Master-link utilization (0 under the infinite network).
    pub link_utilization: f64,
    /// Deepest master send queue observed (0 under the infinite network).
    pub max_queue_depth: usize,
    /// Blocks transferred toward workers that died before computing on them.
    pub wasted_blocks: u64,
    /// Blocks shipped over root → sub-master links (0 on the flat topology
    /// and for a single-sub-master tree; included in `total_blocks`).
    pub tier_blocks: u64,
    /// Result (C-block) write-back volume priced on the master link (0
    /// unless [`ExperimentConfig::price_returns`] is set; not included in
    /// `total_blocks`).
    pub returned_blocks: u64,
    /// The platform the run used (drawn or fixed).
    pub platform: Platform,
}

/// Aggregate over a trial campaign.
#[derive(Clone, Debug)]
pub struct TrialSummary {
    /// Normalized communication volume across trials.
    pub normalized_comm: OnlineStats,
    /// Raw block totals across trials.
    pub total_blocks: OnlineStats,
    /// Makespans across trials.
    pub makespan: OnlineStats,
    /// β values used across trials (empty stats for non-two-phase runs).
    pub beta_used: OnlineStats,
    /// Tasks lost to injected failures across trials.
    pub lost_tasks: OnlineStats,
    /// Blocks re-shipped while re-allocating lost tasks, across trials.
    pub reshipped_blocks: OnlineStats,
    /// Total transfer-wait time (summed over workers) across trials.
    pub transfer_wait: OnlineStats,
    /// Master-link utilization across trials.
    pub link_utilization: OnlineStats,
    /// Result write-back volume across trials (zero unless return-path
    /// pricing is enabled).
    pub returned_blocks: OnlineStats,
    /// Number of trials.
    pub trials: usize,
}

/// The platform a given `(config, seed)` pair will run on — the fixed one
/// if the config carries it, otherwise the seeded draw [`run_once`] would
/// make. Lets analysis curves be computed on exactly the platforms the
/// simulation used.
pub fn platform_for(cfg: &ExperimentConfig, seed: u64) -> Platform {
    match &cfg.platform {
        Some(pf) => pf.clone(),
        None => Platform::sample(
            cfg.processors,
            &cfg.distribution,
            &mut rng_for(seed, STREAM_PLATFORM),
        ),
    }
}

/// Seed of trial `i` in a [`run_trials`] campaign with master `seed`.
pub fn trial_seed(seed: u64, i: usize) -> u64 {
    derive_seed(seed, i as u64)
}

/// Runs one seeded experiment.
///
/// The platform is drawn from the config's distribution using one derived
/// stream (unless a fixed platform is supplied) and the scheduling run uses
/// another, so e.g. sweeping β with the same seed holds everything else
/// constant.
pub fn run_once(cfg: &ExperimentConfig, seed: u64) -> RunResult {
    run_once_impl(cfg, seed, None::<&mut Recorder>)
}

/// Runs one experiment under an engine configured from `cfg`, optionally
/// emitting every event and probe sample through `rec` — the common body
/// behind [`run_once`] and [`crate::observe::run_once_observed`]. The
/// `None` path is exactly the unobserved engine (no extra work, no
/// allocation).
fn drive<S: Scheduler, K: StreamingSink>(
    platform: &Platform,
    cfg: &ExperimentConfig,
    sched: S,
    rng: &mut StdRng,
    rec: &mut Option<&mut Recorder<K>>,
) -> (SimReport, S) {
    let eng = hetsched_sim::Engine::new(platform, cfg.speed_model, sched)
        .with_failures(&cfg.failures)
        .with_network(cfg.network)
        .with_return_pricing(cfg.price_returns);
    match rec.as_deref_mut() {
        Some(r) => eng.run_recorded(rng, r),
        None => eng.run(rng),
    }
}

pub(crate) fn run_once_impl<K: StreamingSink>(
    cfg: &ExperimentConfig,
    seed: u64,
    mut rec: Option<&mut Recorder<K>>,
) -> RunResult {
    cfg.validate().expect("invalid experiment config");
    // Stochastic fail-stop entries draw their fixed times from a dedicated
    // per-trial stream before any engine sees the scenario; fixed-only
    // scenarios skip the draw entirely, so existing runs stay bit-identical.
    let resolved_cfg;
    let cfg = if cfg.failures.has_stochastic() {
        resolved_cfg = ExperimentConfig {
            failures: cfg.failures.resolve(&mut rng_for(seed, STREAM_FAILURES)),
            ..cfg.clone()
        };
        &resolved_cfg
    } else {
        cfg
    };
    let mut platform = platform_for(cfg, seed);
    if cfg.link_latency > 0.0 {
        platform = platform.with_uniform_link_latency(cfg.link_latency);
    }
    if let Some(bws) = &cfg.link_bandwidths {
        platform = platform.with_link_bandwidths(bws.clone());
    }
    let n = cfg.kernel.n();
    let p = cfg.processors;
    let lb = cfg.kernel.lower_bound(&platform);
    let mut rng = rng_for(seed, STREAM_RUN);

    // Resolve β (and hence the threshold) if needed.
    let beta_used = match (&cfg.strategy, &cfg.kernel) {
        (Strategy::TwoPhase(BetaChoice::Analytic), Kernel::Outer { .. }) => {
            Some(OuterAnalysis::new(&platform, n).optimal_beta().0)
        }
        (Strategy::TwoPhase(BetaChoice::Analytic), Kernel::Matmul { .. }) => {
            Some(MatmulAnalysis::new(&platform, n).optimal_beta().0)
        }
        (Strategy::TwoPhase(BetaChoice::Homogeneous), Kernel::Outer { .. }) => {
            Some(OuterAnalysis::homogeneous(p, n).optimal_beta().0)
        }
        (Strategy::TwoPhase(BetaChoice::Homogeneous), Kernel::Matmul { .. }) => {
            Some(MatmulAnalysis::homogeneous(p, n).optimal_beta().0)
        }
        (Strategy::TwoPhase(BetaChoice::Fixed(b)), _) => Some(*b),
        _ => None,
    };

    // Tree topology: the root statically splits workers and grid across
    // sub-masters; each shard runs its flat strategy unchanged. A single
    // sub-master goes through the same code path but is bit-for-bit
    // identical to the flat dispatch below (same platform borrow, same
    // RNG stream, no tier transfers).
    if let Topology::Tree { submasters } = cfg.topology {
        let (report, phase_split) =
            run_tree_impl(cfg, &platform, submasters, seed, beta_used, &mut rec);
        return finish(cfg, report, phase_split, beta_used, lb, platform);
    }

    // Dispatch on (kernel, strategy). Each arm runs the generic engine with
    // its concrete scheduler and harvests strategy-specific accounting.
    let (report, phase_split) = match (cfg.kernel, cfg.strategy) {
        (Kernel::Outer { n }, Strategy::Random) => {
            let (r, _) = drive(&platform, cfg, RandomOuter::new(n, p), &mut rng, &mut rec);
            (r, None)
        }
        (Kernel::Outer { n }, Strategy::Sorted) => {
            let (r, _) = drive(&platform, cfg, SortedOuter::new(n, p), &mut rng, &mut rec);
            (r, None)
        }
        (Kernel::Outer { n }, Strategy::Dynamic) => {
            let (r, _) = drive(&platform, cfg, DynamicOuter::new(n, p), &mut rng, &mut rec);
            (r, None)
        }
        (Kernel::Outer { n }, Strategy::Static) => {
            let (r, _) = drive(
                &platform,
                cfg,
                hetsched_partition::StaticOuter::new(n, &platform),
                &mut rng,
                &mut rec,
            );
            (r, None)
        }
        (Kernel::Matmul { .. }, Strategy::Static) => {
            unreachable!("rejected by validate()")
        }
        (Kernel::Outer { n }, Strategy::TwoPhase(choice)) => {
            let sched = match (choice, beta_used) {
                (BetaChoice::Phase1Fraction(f), _) => {
                    DynamicOuter2Phases::with_phase1_fraction(n, p, f)
                }
                (_, Some(b)) => DynamicOuter2Phases::with_beta(n, p, b),
                _ => unreachable!("β resolved above for non-fraction choices"),
            };
            let (r, s) = drive(&platform, cfg, sched, &mut rng, &mut rec);
            let split = (
                s.phase1_blocks(),
                s.phase2_blocks(),
                s.phase1_tasks(),
                s.phase2_tasks(),
            );
            (r, Some(split))
        }
        (Kernel::Matmul { n }, Strategy::Random) => {
            let (r, _) = drive(&platform, cfg, RandomMatrix::new(n, p), &mut rng, &mut rec);
            (r, None)
        }
        (Kernel::Matmul { n }, Strategy::Sorted) => {
            let (r, _) = drive(&platform, cfg, SortedMatrix::new(n, p), &mut rng, &mut rec);
            (r, None)
        }
        (Kernel::Matmul { n }, Strategy::Dynamic) => {
            let (r, _) = drive(&platform, cfg, DynamicMatrix::new(n, p), &mut rng, &mut rec);
            (r, None)
        }
        (Kernel::Matmul { n }, Strategy::TwoPhase(choice)) => {
            let sched = match (choice, beta_used) {
                (BetaChoice::Phase1Fraction(f), _) => {
                    DynamicMatrix2Phases::with_phase1_fraction(n, p, f)
                }
                (_, Some(b)) => DynamicMatrix2Phases::with_beta(n, p, b),
                _ => unreachable!("β resolved above for non-fraction choices"),
            };
            let (r, s) = drive(&platform, cfg, sched, &mut rng, &mut rec);
            let split = (
                s.phase1_blocks(),
                s.phase2_blocks(),
                s.phase1_tasks(),
                s.phase2_tasks(),
            );
            (r, Some(split))
        }
    };

    finish(cfg, report, phase_split, beta_used, lb, platform)
}

/// Folds a finished engine report into the public [`RunResult`].
fn finish(
    _cfg: &ExperimentConfig,
    report: SimReport,
    phase_split: Option<(u64, u64, usize, usize)>,
    beta_used: Option<f64>,
    lb: f64,
    platform: Platform,
) -> RunResult {
    RunResult {
        total_blocks: report.total_blocks,
        normalized_comm: report.normalized(lb),
        makespan: report.makespan,
        lower_bound: lb,
        beta_used,
        phase_split,
        tasks_per_proc: report.ledger.tasks_per_proc().to_vec(),
        blocks_per_proc: report.ledger.blocks_per_proc().to_vec(),
        lost_tasks: report.lost_tasks,
        reshipped_blocks: report.reshipped_blocks,
        transfer_wait_per_proc: report.ledger.wait_per_proc().to_vec(),
        link_utilization: report.link_utilization,
        max_queue_depth: report.max_queue_depth,
        wasted_blocks: report.wasted_blocks,
        tier_blocks: report.tier_blocks,
        returned_blocks: report.returned_blocks,
        platform,
    }
}

/// Root → sub-master transfer volume for one shard: the static input
/// footprint of its task rectangle.
///
/// * outer product: the shard's slice of `a` (its rows) plus its slice of
///   `b` (its columns);
/// * matmul: the `rows × n` slab of `A`, the `n × cols` slab of `B`, and
///   the shard's `rows × cols` tile of `C` (staged at the sub-master) — a
///   modeling choice, coarse on purpose: the root ships each shard its
///   whole static working set once, up front.
fn tree_input_blocks(kernel: Kernel, s: &ShardLayout) -> u64 {
    let rows = s.rows() as u64;
    let cols = s.cols() as u64;
    match kernel {
        Kernel::Outer { .. } => rows + cols,
        Kernel::Matmul { n } => {
            let n = n as u64;
            rows * n + n * cols + rows * cols
        }
    }
}

/// Builds the [`ShardSpec`]s for `plan` and runs the tree engine. With a
/// single shard the RNG is the flat run stream (`rng_for(seed,
/// STREAM_RUN)`), pinning bit-identity with the flat engine; with several,
/// shard `j` gets its own derived stream.
fn run_tree_strategy<S: Scheduler + Send, K: StreamingSink>(
    cfg: &ExperimentConfig,
    platform: &Platform,
    plan: &[ShardLayout],
    seed: u64,
    rec: &mut Option<&mut Recorder<K>>,
    make: impl Fn(&ShardLayout) -> S,
) -> (TreeOutcome, Vec<S>) {
    let single = plan.len() == 1;
    let shards = plan
        .iter()
        .enumerate()
        .map(|(j, s)| ShardSpec {
            scheduler: make(s),
            start: s.start,
            len: s.len,
            input_blocks: tree_input_blocks(cfg.kernel, s),
            rng: if single {
                rng_for(seed, STREAM_RUN)
            } else {
                rng_for(derive_seed(seed, j as u64), STREAM_RUN)
            },
        })
        .collect();
    run_tree_with(
        platform,
        cfg.speed_model,
        &cfg.failures,
        cfg.network,
        shards,
        TreeOpts {
            threads: cfg.tree_threads,
        },
        rec.as_deref_mut(),
    )
}

/// Tree-topology dispatch on (kernel, strategy): plans the top-level split
/// and runs one rectangular shard scheduler per sub-master.
fn run_tree_impl<K: StreamingSink>(
    cfg: &ExperimentConfig,
    platform: &Platform,
    submasters: usize,
    seed: u64,
    beta_used: Option<f64>,
    rec: &mut Option<&mut Recorder<K>>,
) -> (SimReport, Option<(u64, u64, usize, usize)>) {
    let plan = plan_shards(platform, submasters, cfg.kernel.n());
    match (cfg.kernel, cfg.strategy) {
        (Kernel::Outer { .. }, Strategy::Random) => {
            let (o, _) = run_tree_strategy(cfg, platform, &plan, seed, rec, |s| {
                RandomOuter::rect(s.rows(), s.cols(), s.len)
            });
            (o.report, None)
        }
        (Kernel::Outer { .. }, Strategy::Sorted) => {
            let (o, _) = run_tree_strategy(cfg, platform, &plan, seed, rec, |s| {
                SortedOuter::rect(s.rows(), s.cols(), s.len)
            });
            (o.report, None)
        }
        (Kernel::Outer { .. }, Strategy::Dynamic) => {
            let (o, _) = run_tree_strategy(cfg, platform, &plan, seed, rec, |s| {
                DynamicOuter::rect(s.rows(), s.cols(), s.len)
            });
            (o.report, None)
        }
        (Kernel::Outer { .. }, Strategy::TwoPhase(choice)) => {
            let (o, scheds) = run_tree_strategy(cfg, platform, &plan, seed, rec, |s| {
                match (choice, beta_used) {
                    (BetaChoice::Phase1Fraction(f), _) => {
                        DynamicOuter2Phases::rect_with_phase1_fraction(s.rows(), s.cols(), s.len, f)
                    }
                    (_, Some(b)) => {
                        DynamicOuter2Phases::rect_with_beta(s.rows(), s.cols(), s.len, b)
                    }
                    _ => unreachable!("β resolved above for non-fraction choices"),
                }
            });
            (
                o.report,
                Some(merge_phase_split(scheds.iter().map(|s| {
                    (
                        s.phase1_blocks(),
                        s.phase2_blocks(),
                        s.phase1_tasks(),
                        s.phase2_tasks(),
                    )
                }))),
            )
        }
        (Kernel::Matmul { n }, Strategy::Random) => {
            let (o, _) = run_tree_strategy(cfg, platform, &plan, seed, rec, |s| {
                RandomMatrix::rect(s.rows(), s.cols(), n, s.len)
            });
            (o.report, None)
        }
        (Kernel::Matmul { n }, Strategy::Sorted) => {
            let (o, _) = run_tree_strategy(cfg, platform, &plan, seed, rec, |s| {
                SortedMatrix::rect(s.rows(), s.cols(), n, s.len)
            });
            (o.report, None)
        }
        (Kernel::Matmul { n }, Strategy::Dynamic) => {
            let (o, _) = run_tree_strategy(cfg, platform, &plan, seed, rec, |s| {
                DynamicMatrix::rect(s.rows(), s.cols(), n, s.len)
            });
            (o.report, None)
        }
        (Kernel::Matmul { n }, Strategy::TwoPhase(choice)) => {
            let (o, scheds) = run_tree_strategy(cfg, platform, &plan, seed, rec, |s| {
                match (choice, beta_used) {
                    (BetaChoice::Phase1Fraction(f), _) => {
                        DynamicMatrix2Phases::rect_with_phase1_fraction(
                            s.rows(),
                            s.cols(),
                            n,
                            s.len,
                            f,
                        )
                    }
                    (_, Some(b)) => {
                        DynamicMatrix2Phases::rect_with_beta(s.rows(), s.cols(), n, s.len, b)
                    }
                    _ => unreachable!("β resolved above for non-fraction choices"),
                }
            });
            (
                o.report,
                Some(merge_phase_split(scheds.iter().map(|s| {
                    (
                        s.phase1_blocks(),
                        s.phase2_blocks(),
                        s.phase1_tasks(),
                        s.phase2_tasks(),
                    )
                }))),
            )
        }
        (_, Strategy::Static) => unreachable!("rejected by validate()"),
    }
}

/// Sums per-shard two-phase accounting into the global split.
fn merge_phase_split(
    splits: impl Iterator<Item = (u64, u64, usize, usize)>,
) -> (u64, u64, usize, usize) {
    splits.fold((0, 0, 0, 0), |acc, s| {
        (acc.0 + s.0, acc.1 + s.1, acc.2 + s.2, acc.3 + s.3)
    })
}

/// Order-preserving parallel map over a work list, with the chunked
/// crossbeam-scoped pattern the trial campaigns use.
///
/// Item `i` is mapped by `f(i, &items[i])` and lands in slot `i` of the
/// output regardless of which thread ran it, so results are bit-for-bit
/// independent of the thread count and schedule — provided `f` itself only
/// depends on `(i, items[i])` (e.g. seeds every RNG from `i`).
///
/// `threads: None` uses the machine's available parallelism; `Some(t)` pins
/// the worker count (useful for pinning determinism tests). `t <= 1`, a
/// single item, or an empty list degrade to a plain serial map.
pub fn parallel_map<T, R, F>(items: &[T], threads: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
        })
        .clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk_len = n.div_ceil(threads);
    let f = &f;
    crossbeam::thread::scope(|scope| {
        for (t, chunk) in slots.chunks_mut(chunk_len).enumerate() {
            let base = t * chunk_len;
            scope.spawn(move |_| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let i = base + off;
                    *slot = Some(f(i, &items[i]));
                }
            });
        }
    })
    .expect("parallel_map worker panicked");
    slots.into_iter().map(|s| s.expect("slot filled")).collect()
}

/// Aggregates a campaign's per-trial results (in order) into a
/// [`TrialSummary`].
pub fn summarize_runs(results: &[RunResult]) -> TrialSummary {
    let mut summary = TrialSummary {
        normalized_comm: OnlineStats::new(),
        total_blocks: OnlineStats::new(),
        makespan: OnlineStats::new(),
        beta_used: OnlineStats::new(),
        lost_tasks: OnlineStats::new(),
        reshipped_blocks: OnlineStats::new(),
        transfer_wait: OnlineStats::new(),
        link_utilization: OnlineStats::new(),
        returned_blocks: OnlineStats::new(),
        trials: results.len(),
    };
    for r in results {
        summary.normalized_comm.push(r.normalized_comm);
        summary.total_blocks.push(r.total_blocks as f64);
        summary.makespan.push(r.makespan);
        summary.lost_tasks.push(r.lost_tasks as f64);
        summary.reshipped_blocks.push(r.reshipped_blocks as f64);
        summary.returned_blocks.push(r.returned_blocks as f64);
        summary
            .transfer_wait
            .push(r.transfer_wait_per_proc.iter().sum());
        summary.link_utilization.push(r.link_utilization);
        if let Some(b) = r.beta_used {
            summary.beta_used.push(b);
        }
    }
    summary
}

/// Runs `trials` independent seeded trials in parallel (crossbeam-scoped
/// threads) and aggregates. Trial `i` uses seed `derive_seed(seed, i)`, so
/// results are independent of the thread count and schedule.
pub fn run_trials(cfg: &ExperimentConfig, trials: usize, seed: u64) -> TrialSummary {
    run_trials_with_threads(cfg, trials, seed, None)
}

/// [`run_trials`] with an explicit thread count (`None` = machine default).
/// The summary is identical for every `threads` value — the determinism
/// tests pin `Some(1)` against `Some(4)`.
pub fn run_trials_with_threads(
    cfg: &ExperimentConfig,
    trials: usize,
    seed: u64,
    threads: Option<usize>,
) -> TrialSummary {
    run_trials_collected(cfg, trials, seed, threads).1
}

/// [`run_trials_with_threads`] keeping the per-trial results alongside the
/// summary — the trace-analytics store ingests one row set per trial, and
/// the summary printed next to it must be computed from exactly the same
/// runs.
pub fn run_trials_collected(
    cfg: &ExperimentConfig,
    trials: usize,
    seed: u64,
    threads: Option<usize>,
) -> (Vec<RunResult>, TrialSummary) {
    assert!(trials > 0, "need at least one trial");
    let idx: Vec<usize> = (0..trials).collect();
    let results = parallel_map(&idx, threads, |i, _| {
        run_once(cfg, derive_seed(seed, i as u64))
    });
    let summary = summarize_runs(&results);
    (results, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_platform::SpeedDistribution;

    fn small_outer(strategy: Strategy) -> ExperimentConfig {
        ExperimentConfig {
            kernel: Kernel::Outer { n: 30 },
            strategy,
            processors: 8,
            distribution: SpeedDistribution::paper_default(),
            ..Default::default()
        }
    }

    #[test]
    fn run_once_is_deterministic() {
        let cfg = small_outer(Strategy::TwoPhase(BetaChoice::Analytic));
        let a = run_once(&cfg, 42);
        let b = run_once(&cfg, 42);
        assert_eq!(a.total_blocks, b.total_blocks);
        assert_eq!(a.tasks_per_proc, b.tasks_per_proc);
        assert_eq!(a.beta_used, b.beta_used);
        let c = run_once(&cfg, 43);
        assert!(c.total_blocks != a.total_blocks || c.makespan != a.makespan);
    }

    #[test]
    fn all_eight_arms_complete() {
        for kernel in [Kernel::Outer { n: 12 }, Kernel::Matmul { n: 8 }] {
            for strategy in [
                Strategy::Random,
                Strategy::Sorted,
                Strategy::Dynamic,
                Strategy::TwoPhase(BetaChoice::Fixed(3.0)),
            ] {
                let cfg = ExperimentConfig {
                    kernel,
                    strategy,
                    processors: 4,
                    ..Default::default()
                };
                let r = run_once(&cfg, 7);
                let total: u64 = r.tasks_per_proc.iter().sum();
                assert_eq!(
                    total as usize,
                    kernel.total_tasks(),
                    "{:?}/{:?}",
                    kernel,
                    strategy
                );
                assert!(r.normalized_comm >= 0.99, "below lower bound?!");
            }
        }
    }

    #[test]
    fn beta_resolution_modes() {
        let analytic = run_once(&small_outer(Strategy::TwoPhase(BetaChoice::Analytic)), 1);
        assert!(analytic.beta_used.is_some());
        let hom = run_once(&small_outer(Strategy::TwoPhase(BetaChoice::Homogeneous)), 1);
        assert!(hom.beta_used.is_some());
        // §3.6: the two choices are close.
        let (a, h) = (analytic.beta_used.unwrap(), hom.beta_used.unwrap());
        assert!((a - h).abs() / h < 0.15, "analytic {a} vs homogeneous {h}");
        let fixed = run_once(&small_outer(Strategy::TwoPhase(BetaChoice::Fixed(2.5))), 1);
        assert_eq!(fixed.beta_used, Some(2.5));
        let frac = run_once(
            &small_outer(Strategy::TwoPhase(BetaChoice::Phase1Fraction(0.9))),
            1,
        );
        assert!(frac.beta_used.is_none());
        assert!(frac.phase_split.is_some());
        let rnd = run_once(&small_outer(Strategy::Random), 1);
        assert!(rnd.beta_used.is_none() && rnd.phase_split.is_none());
    }

    #[test]
    fn fixed_platform_is_respected() {
        let pf = Platform::from_speeds(vec![10.0, 20.0, 30.0, 40.0]);
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n: 20 },
            strategy: Strategy::Dynamic,
            processors: 4,
            platform: Some(pf.clone()),
            ..Default::default()
        };
        let r = run_once(&cfg, 9);
        assert_eq!(r.platform, pf);
        // Same platform across seeds.
        let r2 = run_once(&cfg, 10);
        assert_eq!(r2.platform, pf);
    }

    #[test]
    fn trials_aggregate_and_parallelism_is_deterministic() {
        let cfg = small_outer(Strategy::Dynamic);
        let s1 = run_trials(&cfg, 8, 123);
        let s2 = run_trials(&cfg, 8, 123);
        assert_eq!(s1.trials, 8);
        assert_eq!(s1.normalized_comm.count(), 8);
        assert_eq!(s1.normalized_comm.mean(), s2.normalized_comm.mean());
        assert_eq!(s1.total_blocks.mean(), s2.total_blocks.mean());
        assert!(s1.normalized_comm.std_dev() >= 0.0);
    }

    #[test]
    fn injected_failure_loses_and_recovers_tasks() {
        use hetsched_platform::{FailureModel, ProcId};
        let strategies = [
            Strategy::Random,
            Strategy::Sorted,
            Strategy::Dynamic,
            Strategy::TwoPhase(BetaChoice::Fixed(3.0)),
        ];
        for kernel in [Kernel::Outer { n: 12 }, Kernel::Matmul { n: 8 }] {
            for strategy in strategies {
                let clean = ExperimentConfig {
                    kernel,
                    strategy,
                    processors: 4,
                    ..Default::default()
                };
                let faulty = ExperimentConfig {
                    failures: FailureModel::none().fail_at(ProcId(1), 0.4),
                    ..clean.clone()
                };
                let r = run_once(&faulty, 7);
                let total: u64 = r.tasks_per_proc.iter().sum();
                assert_eq!(
                    total as usize,
                    kernel.total_tasks(),
                    "{kernel:?}/{strategy:?}: every task exactly once despite the failure"
                );
                // Clean run on the same seed is untouched by the (inert)
                // failure plumbing.
                let c = run_once(&clean, 7);
                assert_eq!(c.lost_tasks, 0);
                assert_eq!(c.reshipped_blocks, 0);
            }
        }
    }

    #[test]
    fn networked_runs_complete_and_price_transfers() {
        use hetsched_net::NetworkModel;
        for strategy in [Strategy::Random, Strategy::Dynamic] {
            let cfg = ExperimentConfig {
                kernel: Kernel::Outer { n: 16 },
                strategy,
                processors: 4,
                network: NetworkModel::OnePort { master_bw: 20.0 },
                link_latency: 0.01,
                ..Default::default()
            };
            let r = run_once(&cfg, 11);
            let total: u64 = r.tasks_per_proc.iter().sum();
            assert_eq!(total as usize, 256, "{strategy:?}");
            assert!(r.link_utilization > 0.0 && r.link_utilization <= 1.0);
            // Every block crosses the one-port link.
            assert!(r.makespan >= r.total_blocks as f64 / 20.0 - 1e-9);
        }
        // The default (infinite) network reports zero network metrics.
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n: 16 },
            processors: 4,
            ..Default::default()
        };
        let r = run_once(&cfg, 11);
        assert_eq!(r.link_utilization, 0.0);
        assert_eq!(r.max_queue_depth, 0);
        assert_eq!(r.wasted_blocks, 0);
        assert!(r.transfer_wait_per_proc.iter().all(|&w| w == 0.0));
    }

    #[test]
    fn uniform_bandwidth_list_matches_uniform_model() {
        use hetsched_net::NetworkModel;
        let base = ExperimentConfig {
            kernel: Kernel::Outer { n: 16 },
            strategy: Strategy::Dynamic,
            processors: 4,
            network: NetworkModel::BoundedMultiport {
                master_bw: 20.0,
                worker_bw: 5.0,
            },
            ..Default::default()
        };
        let listed = ExperimentConfig {
            link_bandwidths: Some(vec![5.0; 4]),
            ..base.clone()
        };
        let a = run_once(&base, 13);
        let b = run_once(&listed, 13);
        assert_eq!(a.total_blocks, b.total_blocks);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.transfer_wait_per_proc, b.transfer_wait_per_proc);

        // A genuinely slower link can only push the makespan up.
        let throttled = ExperimentConfig {
            link_bandwidths: Some(vec![5.0, 5.0, 5.0, 0.5]),
            ..base.clone()
        };
        let c = run_once(&throttled, 13);
        assert!(
            c.makespan >= a.makespan - 1e-9,
            "{} vs {}",
            c.makespan,
            a.makespan
        );
    }

    #[test]
    fn phase_split_accounts_for_everything() {
        let cfg = small_outer(Strategy::TwoPhase(BetaChoice::Fixed(3.5)));
        let r = run_once(&cfg, 77);
        let (b1, b2, t1, t2) = r.phase_split.unwrap();
        assert_eq!(b1 + b2, r.total_blocks);
        assert_eq!(t1 + t2, 900);
    }
}
