//! Observed runs: the bridge between the engine-level recorder
//! ([`hetsched_sim::Recorder`]) and user-facing trace artifacts.
//!
//! [`run_once_observed`] executes one experiment exactly like
//! [`crate::runner::run_once`] — same seed derivation, same dispatch, same
//! numbers — while capturing the full event trace and the probed state
//! time series. [`render_trace`] turns that capture into a file body in
//! one of the supported [`TraceFormat`]s, with a provenance manifest
//! embedded.

use crate::config::ExperimentConfig;
use crate::provenance::manifest_json;
use crate::runner::{run_once_impl, RunResult};
use hetsched_sim::{ChromeStream, JsonlStream, ProbeConfig, ProbeSeries, Recorder, Trace};
use std::io;

/// On-disk trace encodings (`--trace-format`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line: a manifest line, then every event, then
    /// every probe sample. Grep-able, diff-able, and byte-identical across
    /// thread counts for a fixed seed.
    Jsonl,
    /// Chrome trace-event JSON (load in Perfetto or `chrome://tracing`):
    /// per-worker compute/network lanes plus counter tracks for the probed
    /// residual and queue depth.
    Chrome,
}

impl TraceFormat {
    /// Parses a `--trace-format` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "jsonl" => Ok(TraceFormat::Jsonl),
            "chrome" => Ok(TraceFormat::Chrome),
            other => Err(format!(
                "unknown trace format {other:?} (expected \"jsonl\" or \"chrome\")"
            )),
        }
    }
}

/// One experiment's result together with everything the recorder captured.
#[derive(Debug)]
pub struct ObservedRun {
    /// The same [`RunResult`] an unobserved [`crate::runner::run_once`]
    /// with this config and seed would return.
    pub result: RunResult,
    /// Every engine event (batches, retirements, losses, transfers, waits,
    /// phase switches).
    pub trace: Trace,
    /// The ODE-state time series sampled on the `probe` cadence.
    pub probes: ProbeSeries,
}

/// Runs one experiment with a recorder attached. The simulated numbers are
/// bit-for-bit those of [`crate::runner::run_once`] — observation never
/// perturbs the schedule.
pub fn run_once_observed(cfg: &ExperimentConfig, seed: u64, probe: ProbeConfig) -> ObservedRun {
    let mut rec = Recorder::new(probe);
    let result = run_once_impl(cfg, seed, Some(&mut rec));
    let (trace, probes) = rec.into_parts();
    ObservedRun {
        result,
        trace,
        probes,
    }
}

/// Runs one experiment and renders its trace in `format`, manifest
/// embedded.
///
/// The manifest records `threads: 1`: a traced run is always a single
/// trial on the caller's thread, so the rendered bytes are identical
/// whatever `--threads` the surrounding sweep uses.
pub fn render_trace(
    cfg: &ExperimentConfig,
    seed: u64,
    probe: ProbeConfig,
    format: TraceFormat,
) -> String {
    let obs = run_once_observed(cfg, seed, probe);
    let manifest = manifest_json(cfg, seed, 1, &[]);
    match format {
        TraceFormat::Jsonl => hetsched_sim::sink::jsonl(Some(&manifest), &obs.trace, &obs.probes),
        TraceFormat::Chrome => hetsched_sim::sink::chrome_trace(
            Some(&manifest),
            &obs.trace,
            &obs.probes,
            cfg.processors,
        ),
    }
}

/// Outcome of a [`stream_trace`] run: the usual result plus the streaming
/// recorder's memory accounting.
#[derive(Clone, Debug)]
pub struct StreamedRun {
    /// The same [`RunResult`] an unobserved run would return.
    pub result: RunResult,
    /// Largest number of trace events buffered at once (≤ the chunk size).
    pub peak_buffered_events: usize,
    /// Events written through the sink over the whole run.
    pub flushed_events: usize,
}

/// Runs one experiment streaming its trace into `out` as it is generated,
/// instead of buffering every event and rendering at the end.
///
/// The written bytes are identical to what [`render_trace`] produces for
/// the same `(cfg, seed, probe, format)` — both drive the same incremental
/// writers — but peak trace memory is bounded by `chunk_events` (plus the
/// probe series, which is columnar and small), not by the event count.
/// `out` only needs to be a `Write`; pass `&mut Vec<u8>` to capture bytes
/// or a buffered file writer to stream to disk.
pub fn stream_trace<W: io::Write>(
    cfg: &ExperimentConfig,
    seed: u64,
    probe: ProbeConfig,
    format: TraceFormat,
    chunk_events: usize,
    out: W,
) -> io::Result<StreamedRun> {
    let manifest = manifest_json(cfg, seed, 1, &[]);
    match format {
        TraceFormat::Jsonl => {
            let sink = JsonlStream::new(out, Some(&manifest));
            let mut rec = Recorder::streaming(probe, sink, chunk_events);
            let result = run_once_impl(cfg, seed, Some(&mut rec));
            let (peak, flushed) = (rec.peak_buffered_events(), rec.flushed_events());
            rec.finish().into_inner()?;
            Ok(StreamedRun {
                result,
                peak_buffered_events: peak,
                flushed_events: flushed,
            })
        }
        TraceFormat::Chrome => {
            // The buffered renderer decides whether to emit network lanes by
            // scanning the trace for transfer events; streaming cannot look
            // ahead, but a priced network ships at least one batch and so
            // always produces a transfer — the config is an exact proxy.
            let has_net = !cfg.network.is_infinite();
            let sink = ChromeStream::new(out, Some(&manifest), cfg.processors, has_net);
            let mut rec = Recorder::streaming(probe, sink, chunk_events);
            let result = run_once_impl(cfg, seed, Some(&mut rec));
            let (peak, flushed) = (rec.peak_buffered_events(), rec.flushed_events());
            rec.finish().into_inner()?;
            Ok(StreamedRun {
                result,
                peak_buffered_events: peak,
                flushed_events: flushed,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Kernel, Strategy};
    use crate::runner::run_once;
    use hetsched_platform::ProcId;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig {
            kernel: Kernel::Outer { n: 20 },
            strategy: Strategy::Dynamic,
            processors: 4,
            ..Default::default()
        }
    }

    #[test]
    fn trace_format_parses() {
        assert_eq!(TraceFormat::parse("jsonl"), Ok(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::parse("chrome"), Ok(TraceFormat::Chrome));
        assert!(TraceFormat::parse("xml").is_err());
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        let cfg = small_cfg();
        let plain = run_once(&cfg, 7);
        let obs = run_once_observed(&cfg, 7, ProbeConfig::by_events(16));
        assert_eq!(plain.makespan.to_bits(), obs.result.makespan.to_bits());
        assert_eq!(plain.total_blocks, obs.result.total_blocks);
        let traced_tasks: usize = obs
            .trace
            .events()
            .iter()
            .filter(|e| e.kind.is_allocation())
            .map(|e| e.tasks)
            .sum();
        assert_eq!(traced_tasks, 20 * 20, "trace covers every task");
        assert!(!obs.probes.is_empty());
        let last = obs.probes.last().unwrap();
        assert_eq!(last.remaining, 0, "final anchor sample sees completion");
    }

    #[test]
    fn observed_networked_run_probes_link_state() {
        let cfg = ExperimentConfig {
            network: hetsched_net::NetworkModel::OnePort { master_bw: 30.0 },
            ..small_cfg()
        };
        let obs = run_once_observed(&cfg, 3, ProbeConfig::by_events(8));
        let last = obs.probes.last().unwrap();
        assert!(last.link_busy > 0.0, "one-port runs probe link busy time");
        assert!(obs
            .trace
            .events()
            .iter()
            .any(|e| e.kind == hetsched_sim::EventKind::Transfer));
    }

    #[test]
    fn rendered_traces_embed_manifest_and_are_deterministic() {
        let cfg = small_cfg();
        for format in [TraceFormat::Jsonl, TraceFormat::Chrome] {
            let a = render_trace(&cfg, 9, ProbeConfig::by_events(32), format);
            let b = render_trace(&cfg, 9, ProbeConfig::by_events(32), format);
            assert_eq!(a, b, "{format:?} must be deterministic");
            assert!(a.contains("\"seed\":9"));
            assert!(a.contains("\"tool\":\"hetsched\""));
        }
        let jsonl = render_trace(&cfg, 9, ProbeConfig::by_events(32), TraceFormat::Jsonl);
        assert!(jsonl.lines().next().unwrap().contains("\"manifest\""));
        let chrome = render_trace(&cfg, 9, ProbeConfig::by_events(32), TraceFormat::Chrome);
        assert!(chrome.contains("\"traceEvents\""));
    }

    #[test]
    fn streamed_trace_matches_buffered_and_bounds_memory() {
        let configs = [
            small_cfg(),
            ExperimentConfig {
                network: hetsched_net::NetworkModel::OnePort { master_bw: 30.0 },
                ..small_cfg()
            },
        ];
        for cfg in &configs {
            for format in [TraceFormat::Jsonl, TraceFormat::Chrome] {
                let buffered = render_trace(cfg, 13, ProbeConfig::by_events(16), format);
                let mut bytes = Vec::new();
                let streamed =
                    stream_trace(cfg, 13, ProbeConfig::by_events(16), format, 8, &mut bytes)
                        .unwrap();
                assert_eq!(
                    String::from_utf8(bytes).unwrap(),
                    buffered,
                    "{format:?} streamed bytes must match the buffered render"
                );
                assert!(
                    streamed.peak_buffered_events <= 8,
                    "peak {} exceeds the chunk",
                    streamed.peak_buffered_events
                );
                assert!(streamed.flushed_events > 8, "multiple chunks flushed");
                let plain = run_once(cfg, 13);
                assert_eq!(
                    plain.makespan.to_bits(),
                    streamed.result.makespan.to_bits(),
                    "streaming never perturbs the schedule"
                );
            }
        }
    }

    #[test]
    fn probes_report_useful_fraction_for_knowledge_strategies() {
        let obs = run_once_observed(&small_cfg(), 5, ProbeConfig::by_events(8));
        let mid = obs.probes.get(obs.probes.len() / 2);
        let f = mid.useful_fraction[ProcId(0).idx()];
        assert!(f.is_finite() && (0.0..=1.0).contains(&f), "{f}");
    }
}
