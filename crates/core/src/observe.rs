//! Observed runs: the bridge between the engine-level recorder
//! ([`hetsched_sim::Recorder`]) and user-facing trace artifacts.
//!
//! [`run_once_observed`] executes one experiment exactly like
//! [`crate::runner::run_once`] — same seed derivation, same dispatch, same
//! numbers — while capturing the full event trace and the probed state
//! time series. [`render_trace`] turns that capture into a file body in
//! one of the supported [`TraceFormat`]s, with a provenance manifest
//! embedded.

use crate::config::ExperimentConfig;
use crate::provenance::manifest_json;
use crate::runner::{run_once_impl, RunResult};
use hetsched_sim::{ProbeConfig, ProbeSeries, Recorder, Trace};

/// On-disk trace encodings (`--trace-format`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line: a manifest line, then every event, then
    /// every probe sample. Grep-able, diff-able, and byte-identical across
    /// thread counts for a fixed seed.
    Jsonl,
    /// Chrome trace-event JSON (load in Perfetto or `chrome://tracing`):
    /// per-worker compute/network lanes plus counter tracks for the probed
    /// residual and queue depth.
    Chrome,
}

impl TraceFormat {
    /// Parses a `--trace-format` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "jsonl" => Ok(TraceFormat::Jsonl),
            "chrome" => Ok(TraceFormat::Chrome),
            other => Err(format!(
                "unknown trace format {other:?} (expected \"jsonl\" or \"chrome\")"
            )),
        }
    }
}

/// One experiment's result together with everything the recorder captured.
#[derive(Debug)]
pub struct ObservedRun {
    /// The same [`RunResult`] an unobserved [`crate::runner::run_once`]
    /// with this config and seed would return.
    pub result: RunResult,
    /// Every engine event (batches, retirements, losses, transfers, waits,
    /// phase switches).
    pub trace: Trace,
    /// The ODE-state time series sampled on the `probe` cadence.
    pub probes: ProbeSeries,
}

/// Runs one experiment with a recorder attached. The simulated numbers are
/// bit-for-bit those of [`crate::runner::run_once`] — observation never
/// perturbs the schedule.
pub fn run_once_observed(cfg: &ExperimentConfig, seed: u64, probe: ProbeConfig) -> ObservedRun {
    let mut rec = Recorder::new(probe);
    let result = run_once_impl(cfg, seed, Some(&mut rec));
    let (trace, probes) = rec.into_parts();
    ObservedRun {
        result,
        trace,
        probes,
    }
}

/// Runs one experiment and renders its trace in `format`, manifest
/// embedded.
///
/// The manifest records `threads: 1`: a traced run is always a single
/// trial on the caller's thread, so the rendered bytes are identical
/// whatever `--threads` the surrounding sweep uses.
pub fn render_trace(
    cfg: &ExperimentConfig,
    seed: u64,
    probe: ProbeConfig,
    format: TraceFormat,
) -> String {
    let obs = run_once_observed(cfg, seed, probe);
    let manifest = manifest_json(cfg, seed, 1, &[]);
    match format {
        TraceFormat::Jsonl => hetsched_sim::sink::jsonl(Some(&manifest), &obs.trace, &obs.probes),
        TraceFormat::Chrome => hetsched_sim::sink::chrome_trace(
            Some(&manifest),
            &obs.trace,
            &obs.probes,
            cfg.processors,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Kernel, Strategy};
    use crate::runner::run_once;
    use hetsched_platform::ProcId;

    fn small_cfg() -> ExperimentConfig {
        ExperimentConfig {
            kernel: Kernel::Outer { n: 20 },
            strategy: Strategy::Dynamic,
            processors: 4,
            ..Default::default()
        }
    }

    #[test]
    fn trace_format_parses() {
        assert_eq!(TraceFormat::parse("jsonl"), Ok(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::parse("chrome"), Ok(TraceFormat::Chrome));
        assert!(TraceFormat::parse("xml").is_err());
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        let cfg = small_cfg();
        let plain = run_once(&cfg, 7);
        let obs = run_once_observed(&cfg, 7, ProbeConfig::by_events(16));
        assert_eq!(plain.makespan.to_bits(), obs.result.makespan.to_bits());
        assert_eq!(plain.total_blocks, obs.result.total_blocks);
        let traced_tasks: usize = obs
            .trace
            .events()
            .iter()
            .filter(|e| e.kind.is_allocation())
            .map(|e| e.tasks)
            .sum();
        assert_eq!(traced_tasks, 20 * 20, "trace covers every task");
        assert!(!obs.probes.samples().is_empty());
        let last = obs.probes.samples().last().unwrap();
        assert_eq!(last.remaining, 0, "final anchor sample sees completion");
    }

    #[test]
    fn observed_networked_run_probes_link_state() {
        let cfg = ExperimentConfig {
            network: hetsched_net::NetworkModel::OnePort { master_bw: 30.0 },
            ..small_cfg()
        };
        let obs = run_once_observed(&cfg, 3, ProbeConfig::by_events(8));
        let last = obs.probes.samples().last().unwrap();
        assert!(last.link_busy > 0.0, "one-port runs probe link busy time");
        assert!(obs
            .trace
            .events()
            .iter()
            .any(|e| e.kind == hetsched_sim::EventKind::Transfer));
    }

    #[test]
    fn rendered_traces_embed_manifest_and_are_deterministic() {
        let cfg = small_cfg();
        for format in [TraceFormat::Jsonl, TraceFormat::Chrome] {
            let a = render_trace(&cfg, 9, ProbeConfig::by_events(32), format);
            let b = render_trace(&cfg, 9, ProbeConfig::by_events(32), format);
            assert_eq!(a, b, "{format:?} must be deterministic");
            assert!(a.contains("\"seed\":9"));
            assert!(a.contains("\"tool\":\"hetsched\""));
        }
        let jsonl = render_trace(&cfg, 9, ProbeConfig::by_events(32), TraceFormat::Jsonl);
        assert!(jsonl.lines().next().unwrap().contains("\"manifest\""));
        let chrome = render_trace(&cfg, 9, ProbeConfig::by_events(32), TraceFormat::Chrome);
        assert!(chrome.contains("\"traceEvents\""));
    }

    #[test]
    fn probes_report_useful_fraction_for_knowledge_strategies() {
        let obs = run_once_observed(&small_cfg(), 5, ProbeConfig::by_events(8));
        let mid = &obs.probes.samples()[obs.probes.len() / 2];
        let f = mid.useful_fraction[ProcId(0).idx()];
        assert!(f.is_finite() && (0.0..=1.0).contains(&f), "{f}");
    }
}
