//! Textual job specs: one-line `key=value` experiment descriptions.
//!
//! The scheduler daemon (`hetsched serve`) accepts jobs over a socket, so a
//! job must travel as plain text and replay byte-identically from the event
//! log. A spec is a whitespace-separated list of `key=value` tokens
//! mirroring the `simulate` command's flags:
//!
//! ```text
//! kernel=outer n=60 p=12 strategy=dynamic trials=3 seed=42 \
//!     net=one-port bandwidth=25 name=burst-a group=team-1
//! ```
//!
//! Parsing is strict — unknown or duplicate keys are errors — and total: a
//! spec string alone determines the [`ExperimentConfig`], trial count and
//! seed, which is what makes log replay deterministic.

use crate::config::{BetaChoice, ExperimentConfig, Kernel, Strategy};
use hetsched_net::NetworkModel;
use hetsched_platform::{FailureModel, Platform, ProcId, Scenario};
use hetsched_sim::Topology;

/// Every key a job spec may carry.
const KNOWN_KEYS: &[&str] = &[
    "kernel",
    "n",
    "p",
    "strategy",
    "beta",
    "trials",
    "seed",
    "scenario",
    "speeds",
    "fail",
    "straggler",
    "fail-exp",
    "net",
    "bandwidth",
    "worker-bw",
    "latency",
    "topology",
    "submasters",
    "price-returns",
    "name",
    "group",
];

/// A fully parsed job request: what to run, how often, under which seed.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// The experiment to run.
    pub cfg: ExperimentConfig,
    /// Number of independent trials (≥ 1).
    pub trials: usize,
    /// Master seed of the trial campaign.
    pub seed: u64,
    /// Human-readable job label (defaults to `"job"`).
    pub name: String,
    /// Fair-share accounting group (defaults to `"default"`).
    pub group: String,
}

/// Parses a `key=value` job spec into a validated [`JobRequest`].
pub fn parse_job_spec(spec: &str) -> Result<JobRequest, String> {
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    for token in spec.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or(format!("spec token {token:?} is not key=value"))?;
        if value.is_empty() {
            return Err(format!("spec key {key:?} has an empty value"));
        }
        if !KNOWN_KEYS.contains(&key) {
            return Err(format!(
                "unknown spec key {key:?} (known: {})",
                KNOWN_KEYS.join(", ")
            ));
        }
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate spec key {key:?}"));
        }
        pairs.push((key, value));
    }
    let get = |key: &str| pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);

    let n: usize = parse_num(get("n"), 100, "n")?;
    let kernel = match get("kernel").unwrap_or("outer") {
        "outer" => Kernel::Outer { n },
        "matmul" => Kernel::Matmul { n },
        other => return Err(format!("kernel: expected outer|matmul, got {other:?}")),
    };
    let beta_choice = match get("beta").unwrap_or("analytic") {
        "analytic" => BetaChoice::Analytic,
        "homogeneous" | "hom" => BetaChoice::Homogeneous,
        v => BetaChoice::Fixed(
            v.parse()
                .map_err(|_| format!("beta: expected analytic|homogeneous|FLOAT, got {v:?}"))?,
        ),
    };
    let strategy = match get("strategy").unwrap_or("two-phase") {
        "random" => Strategy::Random,
        "sorted" => Strategy::Sorted,
        "dynamic" => Strategy::Dynamic,
        "two-phase" | "2phase" | "two_phase" => Strategy::TwoPhase(beta_choice),
        "static" => Strategy::Static,
        other => {
            return Err(format!(
                "strategy: expected random|sorted|dynamic|two-phase|static, got {other:?}"
            ))
        }
    };
    let trials: usize = parse_num(get("trials"), 1, "trials")?;
    if trials == 0 {
        return Err("trials: need at least 1 trial, got 0".into());
    }
    let seed: u64 = parse_num(get("seed"), 0xC0FFEE, "seed")?;

    let mut cfg = ExperimentConfig {
        kernel,
        strategy,
        processors: parse_num(get("p"), 20, "p")?,
        ..Default::default()
    };
    if let Some(name) = get("scenario") {
        let sc = Scenario::ALL
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or(format!("scenario: unknown scenario {name:?}"))?;
        cfg.distribution = sc.distribution();
        cfg.speed_model = sc.speed_model();
    }
    if let Some(list) = get("speeds") {
        let speeds = parse_f64_list(list, "speeds")?;
        cfg.processors = speeds.len();
        cfg.platform = Some(Platform::from_speeds(speeds));
    }
    let mut failures = FailureModel::none();
    for (worker, time) in parse_worker_value_list(get("fail"), "fail")? {
        if !time.is_finite() || time < 0.0 {
            return Err(format!("fail: failure time must be ≥ 0, got {time}"));
        }
        failures = failures.fail_at(ProcId(worker as u32), time);
    }
    for (worker, factor) in parse_worker_value_list(get("straggler"), "straggler")? {
        if !factor.is_finite() || factor < 1.0 {
            return Err(format!("straggler: factor must be ≥ 1, got {factor}"));
        }
        failures = failures.slow_down(ProcId(worker as u32), factor);
    }
    for (worker, mean) in parse_worker_value_list(get("fail-exp"), "fail-exp")? {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(format!("fail-exp: mean must be > 0, got {mean}"));
        }
        failures = failures.fail_exponential(ProcId(worker as u32), mean);
    }
    cfg.failures = failures;

    let bandwidth: Option<f64> = match get("bandwidth") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("bandwidth: bad number {v:?}"))?,
        ),
        None => None,
    };
    let worker_bws = match get("worker-bw") {
        Some(list) => Some(parse_f64_list(list, "worker-bw")?),
        None => None,
    };
    let (worker_bw, per_worker): (Option<f64>, Option<Vec<f64>>) = match worker_bws {
        None => (None, None),
        Some(bws) if bws.len() == 1 => (Some(bws[0]), None),
        Some(bws) => {
            if bws.iter().any(|b| !b.is_finite() || *b <= 0.0) {
                return Err("worker-bw: bandwidths must be positive and finite".into());
            }
            let max = bws.iter().cloned().fold(f64::MIN, f64::max);
            (Some(max), Some(bws))
        }
    };
    let latency: f64 = match get("latency") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("latency: bad number {v:?}"))?,
        None => 0.0,
    };
    cfg.network = match get("net").unwrap_or("infinite") {
        "infinite" => {
            if bandwidth.is_some() || worker_bw.is_some() || latency != 0.0 {
                return Err("bandwidth/worker-bw/latency only apply to priced models; \
                     pass net=one-port or net=multiport"
                    .into());
            }
            NetworkModel::Infinite
        }
        "one-port" | "oneport" | "1port" => {
            if worker_bw.is_some() {
                return Err("worker-bw only applies to net=multiport".into());
            }
            NetworkModel::OnePort {
                master_bw: bandwidth.ok_or("net=one-port needs bandwidth=B")?,
            }
        }
        "multiport" => NetworkModel::BoundedMultiport {
            master_bw: bandwidth.ok_or("net=multiport needs bandwidth=B")?,
            worker_bw: worker_bw.ok_or("net=multiport needs worker-bw=B")?,
        },
        other => {
            return Err(format!(
                "net: expected infinite|one-port|multiport, got {other:?}"
            ))
        }
    };
    cfg.link_latency = latency;
    cfg.link_bandwidths = per_worker;
    cfg.topology = match get("topology").unwrap_or("flat") {
        "flat" => {
            if get("submasters").is_some() {
                return Err("submasters only applies to topology=tree".into());
            }
            Topology::Flat
        }
        "tree" => Topology::Tree {
            submasters: parse_num(get("submasters"), 2, "submasters")?,
        },
        other => return Err(format!("topology: expected flat|tree, got {other:?}")),
    };
    cfg.price_returns = match get("price-returns") {
        None => false,
        Some("true") | Some("1") => true,
        Some("false") | Some("0") => false,
        Some(other) => return Err(format!("price-returns: expected true|false, got {other:?}")),
    };
    cfg.validate()?;

    Ok(JobRequest {
        cfg,
        trials,
        seed,
        name: get("name").unwrap_or("job").to_string(),
        group: get("group").unwrap_or("default").to_string(),
    })
}

fn parse_num<T: std::str::FromStr>(v: Option<&str>, default: T, key: &str) -> Result<T, String> {
    match v {
        Some(s) => s.parse().map_err(|_| format!("{key}: bad number {s:?}")),
        None => Ok(default),
    }
}

fn parse_f64_list(list: &str, key: &str) -> Result<Vec<f64>, String> {
    let vals: Result<Vec<f64>, String> = list
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("{key}: bad number {s:?}"))
        })
        .collect();
    let vals = vals?;
    if vals.is_empty() {
        return Err(format!("{key}: empty list"));
    }
    Ok(vals)
}

fn parse_worker_value_list(v: Option<&str>, key: &str) -> Result<Vec<(usize, f64)>, String> {
    let Some(spec) = v else {
        return Ok(Vec::new());
    };
    spec.split(',')
        .map(|item| {
            let (w, val) = item
                .trim()
                .split_once('@')
                .ok_or(format!("{key}: expected WORKER@VALUE, got {item:?}"))?;
            let worker: usize = w
                .parse()
                .map_err(|_| format!("{key}: bad worker index {w:?}"))?;
            let value: f64 = val
                .parse()
                .map_err(|_| format!("{key}: bad value {val:?}"))?;
            Ok((worker, value))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_default_config() {
        let req = parse_job_spec("").unwrap();
        assert_eq!(
            format!("{:?}", req.cfg),
            format!("{:?}", ExperimentConfig::default())
        );
        assert_eq!(req.trials, 1);
        assert_eq!(req.seed, 0xC0FFEE);
        assert_eq!(req.name, "job");
        assert_eq!(req.group, "default");
    }

    #[test]
    fn full_spec_round_trips() {
        let req = parse_job_spec(
            "kernel=matmul n=12 p=6 strategy=dynamic trials=3 seed=9 \
             net=one-port bandwidth=25 latency=0.5 name=burst group=alpha",
        )
        .unwrap();
        assert_eq!(req.cfg.kernel, Kernel::Matmul { n: 12 });
        assert_eq!(req.cfg.strategy, Strategy::Dynamic);
        assert_eq!(req.cfg.processors, 6);
        assert_eq!(req.cfg.network, NetworkModel::OnePort { master_bw: 25.0 });
        assert_eq!(req.cfg.link_latency, 0.5);
        assert_eq!(req.trials, 3);
        assert_eq!(req.seed, 9);
        assert_eq!(req.name, "burst");
        assert_eq!(req.group, "alpha");
    }

    #[test]
    fn failures_and_returns_parse() {
        let req = parse_job_spec(
            "p=8 fail=1@5.0 straggler=2@2.0 fail-exp=3@12.5 \
             net=one-port bandwidth=10 price-returns=true",
        )
        .unwrap();
        assert_eq!(req.cfg.failures.failures(), &[(ProcId(1), 5.0)]);
        assert_eq!(req.cfg.failures.stragglers(), &[(ProcId(2), 2.0)]);
        assert_eq!(req.cfg.failures.exp_failures(), &[(ProcId(3), 12.5)]);
        assert!(req.cfg.price_returns);
    }

    #[test]
    fn bad_specs_are_clean_errors() {
        assert!(parse_job_spec("nonsense").is_err(), "not key=value");
        assert!(parse_job_spec("frobnicate=1").is_err(), "unknown key");
        assert!(parse_job_spec("n=10 n=20").is_err(), "duplicate key");
        assert!(parse_job_spec("trials=0").is_err(), "zero trials");
        assert!(parse_job_spec("net=one-port").is_err(), "missing bandwidth");
        assert!(
            parse_job_spec("price-returns=true").is_err(),
            "returns need a priced network"
        );
        assert!(parse_job_spec("fail-exp=0@-1").is_err(), "bad mean");
    }

    #[test]
    fn speeds_override_processor_count() {
        let req = parse_job_spec("speeds=3,2,1").unwrap();
        assert_eq!(req.cfg.processors, 3);
        assert!(req.cfg.platform.is_some());
    }
}
