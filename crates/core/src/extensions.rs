//! Experiments beyond the paper's figures: measured versions of claims the
//! paper makes in passing, and ablations of our own design choices.
//!
//! * [`ext_static_tradeoff`] (`extA`) — §3.1 cites the 7/4-approximation
//!   static partition as the communication yardstick and argues dynamic
//!   schedulers are needed because speeds are unpredictable. We measure
//!   both halves: communication (static wins when its speed estimates are
//!   exact) and makespan under a mis-predicted worker (static collapses,
//!   demand-driven doesn't care).
//! * [`ext_dynamic_speed_models`] (`extB`) — the `dyn.*` scenarios are
//!   ambiguous between jitter around the base speed and a compounding
//!   random walk (see `SpeedModel`). This ablation runs both
//!   interpretations: the communication story is insensitive, which
//!   justifies either reading of the paper.
//! * [`ext_analysis_flavours`] (`extC`) — our exact-form analysis vs the
//!   paper's (corrected) first-order closed form vs simulation, across β:
//!   the flavours agree in the domain of interest, diverge for β ≲ 2.
//! * [`ext_bandwidth_crossover`] (`extF`) — the paper compares strategies
//!   on communication *volume*; with a priced one-port master link we
//!   measure where `DynamicOuter`'s lower volume becomes a *makespan*
//!   advantage over `RandomOuter` as bandwidth tightens.
//! * [`ext_ode_overlay`] (`extG`) — the §3.3 mean-field ODE, overlaid on a
//!   probed run: `DynamicOuter`'s sampled residual-task and shipped-block
//!   trajectories against the analytic `1 − τ` and `Σ_k 2n·x_k(τ)` curves
//!   on the same normalized-time grid. The observability layer makes the
//!   paper's central modelling claim directly checkable.
//! * [`ext_cholesky_policies`] (`extD`) — the paper's §5 future work,
//!   measured: data-aware allocation on the tiled Cholesky DAG cuts
//!   communication roughly in half at every worker count, while all
//!   policies tie on makespan (the Cholesky ready-pool is wide enough
//!   that affinity never starves the critical path); the critical-path
//!   tie-break additionally trims communication at large p.

use crate::config::{BetaChoice, ExperimentConfig, Kernel, Strategy};
use crate::figures::FigOpts;
use crate::runner::{parallel_map, run_once, run_trials_with_threads, summarize_runs, trial_seed};
use crate::series::{FigureData, Series};
use hetsched_analysis::OuterAnalysis;
use hetsched_outer::DynamicOuter2Phases;
use hetsched_partition::StaticOuter;
use hetsched_platform::{Platform, SpeedModel};
use hetsched_util::rng::rng_for;
use hetsched_util::OnlineStats;

/// `extA`: static (perfect-knowledge) partition vs the dynamic two-phase
/// strategy when one worker's real speed is `1/skew` of what the static
/// plan assumed. Series report communication (normalized to the lower
/// bound) and makespan (normalized to the work-conserving ideal on the
/// *actual* speeds).
pub fn ext_static_tradeoff(opts: &FigOpts) -> FigureData {
    let (n, p) = if opts.quick { (40, 8) } else { (100, 20) };
    let declared = Platform::sample(
        p,
        &hetsched_platform::SpeedDistribution::paper_default(),
        &mut rng_for(opts.seed, 0xEA),
    );
    let skews = [1.0, 2.0, 4.0, 8.0];

    let mut static_comm = Series::new("StaticOuter comm");
    let mut dynamic_comm = Series::new("DynamicOuter2Phases comm");
    let mut static_make = Series::new("StaticOuter makespan");
    let mut dynamic_make = Series::new("DynamicOuter2Phases makespan");

    for &skew in &skews {
        // The actual platform: worker 0 runs `skew`× slower than declared.
        let mut speeds = declared.speeds().to_vec();
        speeds[0] /= skew;
        let actual = Platform::from_speeds(speeds);
        let lb = hetsched_platform::outer_lower_bound(n, &actual);
        let ideal = (n * n) as f64 / actual.total_speed();

        let mut sc = OnlineStats::new();
        let mut sm = OnlineStats::new();
        let mut dc = OnlineStats::new();
        let mut dm = OnlineStats::new();
        for t in 0..opts.trials as u64 {
            // Static plans against the *declared* speeds but runs on the
            // actual ones.
            let (s_rep, _) = hetsched_sim::run(
                &actual,
                SpeedModel::Fixed,
                StaticOuter::new(n, &declared),
                &mut rng_for(opts.seed ^ 0xA0, t),
            );
            sc.push(s_rep.normalized(lb));
            sm.push(s_rep.makespan / ideal);

            let beta = OuterAnalysis::new(&actual, n).optimal_beta().0;
            let (d_rep, _) = hetsched_sim::run(
                &actual,
                SpeedModel::Fixed,
                DynamicOuter2Phases::with_beta(n, p, beta),
                &mut rng_for(opts.seed ^ 0xA1, t),
            );
            dc.push(d_rep.normalized(lb));
            dm.push(d_rep.makespan / ideal);
        }
        static_comm.push(skew, sc.mean(), sc.std_dev());
        dynamic_comm.push(skew, dc.mean(), dc.std_dev());
        static_make.push(skew, sm.mean(), sm.std_dev());
        dynamic_make.push(skew, dm.mean(), dm.std_dev());
    }

    FigureData {
        id: "extA",
        title: format!(
            "Static 7/4-partition vs dynamic two-phase, p={p}, n={n}: one worker \
             slower than declared by the x-factor"
        ),
        x_label: "speed mis-prediction factor".into(),
        y_label: "comm: ×lower-bound; makespan: ×work-conserving ideal".into(),
        series: vec![static_comm, dynamic_comm, static_make, dynamic_make],
    }
}

/// `extB`: jitter vs compounding interpretations of the `dyn.*` scenarios.
pub fn ext_dynamic_speed_models(opts: &FigOpts) -> FigureData {
    let (n, p) = if opts.quick { (40, 8) } else { (100, 20) };
    let pcts = [0.05, 0.20, 0.50];

    let mut series = vec![
        Series::new("jitter (paper default here)"),
        Series::new("compounding walk"),
    ];
    for (si, compound) in [false, true].into_iter().enumerate() {
        for &pct in &pcts {
            let cfg = ExperimentConfig {
                kernel: Kernel::Outer { n },
                strategy: Strategy::TwoPhase(BetaChoice::Homogeneous),
                processors: p,
                distribution: hetsched_platform::SpeedDistribution::uniform(80.0, 120.0),
                speed_model: SpeedModel::Perturbed { pct, compound },
                ..Default::default()
            };
            let sum = run_trials_with_threads(&cfg, opts.trials, opts.seed ^ 0xB0, opts.threads);
            series[si].push(
                pct * 100.0,
                sum.normalized_comm.mean(),
                sum.normalized_comm.std_dev(),
            );
        }
    }

    FigureData {
        id: "extB",
        title: format!("dyn.* ablation, p={p}, n={n}: per-task speed jitter vs compounding walk"),
        x_label: "perturbation % per task".into(),
        y_label: "normalized communication".into(),
        series,
    }
}

/// `extC`: exact vs first-order analysis vs simulation across β.
pub fn ext_analysis_flavours(opts: &FigOpts) -> FigureData {
    let (n, p) = if opts.quick { (40, 10) } else { (100, 20) };
    let platform = Platform::sample(
        p,
        &hetsched_platform::SpeedDistribution::paper_default(),
        &mut rng_for(opts.seed, 0xEC),
    );
    let model = OuterAnalysis::new(&platform, n);
    let betas: Vec<f64> = if opts.quick {
        vec![2.0, 4.0, 6.0]
    } else {
        (2..=16).map(|i| i as f64 * 0.5).collect()
    };

    let mut exact = Series::new("Analysis (exact)");
    let mut first = Series::new("Analysis (first-order)");
    let mut sim = Series::new("DynamicOuter2Phases");
    for &b in &betas {
        exact.push(b, model.ratio(b), 0.0);
        first.push(b, model.ratio_first_order(b), 0.0);
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n },
            strategy: Strategy::TwoPhase(BetaChoice::Fixed(b)),
            processors: p,
            platform: Some(platform.clone()),
            ..Default::default()
        };
        let sum = run_trials_with_threads(&cfg, opts.trials, opts.seed ^ 0xC0, opts.threads);
        sim.push(b, sum.normalized_comm.mean(), sum.normalized_comm.std_dev());
    }

    FigureData {
        id: "extC",
        title: format!("Analysis flavours vs simulation, p={p}, n={n}"),
        x_label: "beta".into(),
        y_label: "normalized communication".into(),
        series: vec![exact, first, sim],
    }
}

/// `extD`: DAG scheduling policies on the tiled Cholesky factorization,
/// over the worker count. Two y-quantities per policy: blocks shipped per
/// task, and makespan normalized by the max(work, critical-path) bound.
pub fn ext_cholesky_policies(opts: &FigOpts) -> FigureData {
    use hetsched_dag::{cholesky_graph, simulate, Policy};
    let t = if opts.quick { 10 } else { 24 };
    let graph = cholesky_graph(t);
    let ps: &[usize] = if opts.quick {
        &[4, 16]
    } else {
        &[2, 4, 8, 16, 32, 64]
    };
    let policies = [Policy::Random, Policy::DataAware, Policy::DataAwareCp];

    let mut series: Vec<Series> = Vec::new();
    for pol in policies {
        series.push(Series::new(format!("{} comm/task", pol.label())));
    }
    for pol in policies {
        series.push(Series::new(format!("{} makespan", pol.label())));
    }

    for &p in ps {
        let platform = Platform::sample(
            p,
            &hetsched_platform::SpeedDistribution::paper_default(),
            &mut rng_for(opts.seed, 0xED ^ p as u64),
        );
        for (pi, pol) in policies.iter().enumerate() {
            let mut comm = OnlineStats::new();
            let mut mk = OnlineStats::new();
            for tr in 0..opts.trials as u64 {
                let r = simulate(&graph, &platform, *pol, &mut rng_for(opts.seed ^ 0xD0, tr));
                comm.push(r.comm_per_task());
                mk.push(r.makespan_ratio(&graph, &platform));
            }
            series[pi].push(p as f64, comm.mean(), comm.std_dev());
            series[3 + pi].push(p as f64, mk.mean(), mk.std_dev());
        }
    }

    FigureData {
        id: "extD",
        title: format!(
            "Tiled Cholesky ({t}×{t} tiles, {} tasks): DAG scheduling policies",
            graph.len()
        ),
        x_label: "processors".into(),
        y_label: "comm: blocks/task; makespan: ×max(work, CP) bound".into(),
        series,
    }
}

/// `extF`: bandwidth sweep under the one-port master link. The paper
/// compares strategies on communication *volume*, makespan being equal
/// because communication is free; pricing the link asks the follow-up
/// question — below which bandwidth does `DynamicOuter`'s lower volume
/// translate into lower *makespan* than `RandomOuter`'s? The x-axis is the
/// master bandwidth relative to the platform's aggregate compute rate
/// `Σ s_i` (blocks per unit time over tasks per unit time), the natural
/// compute-vs-communicate scale.
pub fn ext_bandwidth_crossover(opts: &FigOpts) -> FigureData {
    let (n, p) = if opts.quick { (30, 8) } else { (100, 20) };
    let platform = Platform::sample(
        p,
        &hetsched_platform::SpeedDistribution::paper_default(),
        &mut rng_for(opts.seed, 0xEF),
    );
    let total = platform.total_speed();
    let ideal = (n * n) as f64 / total;
    let rels: &[f64] = if opts.quick {
        &[0.5, 2.0, 16.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
    };

    let strategies = [
        (Strategy::Random, "RandomOuter"),
        (Strategy::Dynamic, "DynamicOuter"),
    ];
    let mut series: Vec<Series> = Vec::new();
    for (_, label) in strategies {
        series.push(Series::new(format!("{label} makespan")));
    }
    for (_, label) in strategies {
        series.push(Series::new(format!("{label} link util")));
    }

    // The whole strategies × bandwidth × trial grid fans out at once; each
    // trial re-derives its RNG from (seed, trial index) as in `run_trials`,
    // so the figure is bit-for-bit independent of the thread count.
    let trials = opts.trials;
    let jobs: Vec<(usize, usize, usize)> = (0..strategies.len())
        .flat_map(|si| (0..rels.len()).flat_map(move |ci| (0..trials).map(move |i| (si, ci, i))))
        .collect();
    let runs = parallel_map(&jobs, opts.threads, |_, &(si, ci, i)| {
        let cfg = ExperimentConfig {
            kernel: Kernel::Outer { n },
            strategy: strategies[si].0,
            processors: p,
            platform: Some(platform.clone()),
            network: hetsched_net::NetworkModel::OnePort {
                master_bw: rels[ci] * total,
            },
            ..Default::default()
        };
        run_once(&cfg, trial_seed(opts.seed ^ 0xF0, i))
    });
    for si in 0..strategies.len() {
        for (ci, &c) in rels.iter().enumerate() {
            let base = (si * rels.len() + ci) * trials;
            let sum = summarize_runs(&runs[base..base + trials]);
            series[si].push(
                c,
                sum.makespan.mean() / ideal,
                sum.makespan.std_dev() / ideal,
            );
            series[2 + si].push(
                c,
                sum.link_utilization.mean(),
                sum.link_utilization.std_dev(),
            );
        }
    }

    FigureData {
        id: "extF",
        title: format!(
            "One-port bandwidth sweep, p={p}, n={n}: where lower volume buys \
             lower makespan"
        ),
        x_label: "master bandwidth / aggregate speed".into(),
        y_label: "makespan: ×work-conserving ideal; util: fraction".into(),
        series,
    }
}

/// `extG`: the mean-field ODE against a probed simulation. One
/// `DynamicOuter` run is observed with a sim-time probe cadence matching
/// the analytic grid; the sampled residual-task fraction and cumulative
/// shipped blocks are plotted in normalized time `τ = t·Σs/n²` next to the
/// model's `1 − τ` (work conservation) and `Σ_k 2n·x_k(τ)` (Lemma 2
/// inverted per worker) trajectories.
pub fn ext_ode_overlay(opts: &FigOpts) -> FigureData {
    use crate::observe::run_once_observed;
    use hetsched_sim::ProbeConfig;

    let (n, p) = if opts.quick { (40, 4) } else { (100, 10) };
    let platform = Platform::sample(
        p,
        &hetsched_platform::SpeedDistribution::paper_default(),
        &mut rng_for(opts.seed, 0xE6),
    );
    let model = OuterAnalysis::new(&platform, n);
    let total_speed = platform.total_speed();
    // The mean-field model describes the data-aware phase; stop short of
    // τ = 1 where the ragged finish (workers retiring at different times)
    // leaves the ODE's domain.
    let horizon = 0.9;
    let steps = if opts.quick { 18 } else { 45 };
    let traj = model.dynamic_trajectory(horizon, steps);
    let tasks = (n * n) as f64;
    let max_blocks = (2 * n * p) as f64;

    // Probe on the real-time image of the analytic grid: τ_i·n²/Σs.
    let dt = horizon * tasks / total_speed / steps as f64;
    let cfg = ExperimentConfig {
        kernel: Kernel::Outer { n },
        strategy: Strategy::Dynamic,
        processors: p,
        platform: Some(platform.clone()),
        ..Default::default()
    };
    let obs = run_once_observed(
        &cfg,
        trial_seed(opts.seed ^ 0xE7, 0),
        ProbeConfig::by_time(dt),
    );

    let mut sim_rem = Series::new("simulated remaining");
    let mut ana_rem = Series::new("analytic remaining");
    let mut sim_blocks = Series::new("simulated blocks");
    let mut ana_blocks = Series::new("analytic blocks");
    for s in obs.probes.iter() {
        let tau = model.normalized_time(s.time, total_speed);
        if tau > horizon {
            continue;
        }
        sim_rem.push(tau, s.remaining as f64 / tasks, 0.0);
        let shipped: u64 = s.blocks_per_proc.iter().sum();
        sim_blocks.push(tau, shipped as f64 / max_blocks, 0.0);
    }
    for i in 0..=steps {
        ana_rem.push(traj.tau[i], traj.remaining_fraction[i], 0.0);
        ana_blocks.push(traj.tau[i], traj.total_blocks(i) / max_blocks, 0.0);
    }

    FigureData {
        id: "extG",
        title: format!(
            "Probed DynamicOuter vs the §3.3 ODE, p={p}, n={n}: residual tasks \
             and shipped blocks over normalized time"
        ),
        x_label: "normalized time τ = t·Σs/n²".into(),
        y_label: "remaining: fraction of n²; blocks: fraction of 2np".into(),
        series: vec![sim_rem, ana_rem, sim_blocks, ana_blocks],
    }
}

/// Extension experiment ids.
pub const ALL_EXTENSIONS: [&str; 6] = ["extA", "extB", "extC", "extD", "extF", "extG"];

/// Dispatch by id.
pub fn by_id(id: &str, opts: &FigOpts) -> Option<FigureData> {
    match id {
        "extA" => Some(ext_static_tradeoff(opts)),
        "extB" => Some(ext_dynamic_speed_models(opts)),
        "extC" => Some(ext_analysis_flavours(opts)),
        "extD" => Some(ext_cholesky_policies(opts)),
        "extF" => Some(ext_bandwidth_crossover(opts)),
        "extG" => Some(ext_ode_overlay(opts)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_a_static_wins_comm_loses_makespan() {
        let f = ext_static_tradeoff(&FigOpts::quick());
        let sc = f.series("StaticOuter comm").unwrap();
        let dc = f.series("DynamicOuter2Phases comm").unwrap();
        let sm = f.series("StaticOuter makespan").unwrap();
        let dm = f.series("DynamicOuter2Phases makespan").unwrap();

        // With exact speeds (skew 1): static under 7/4, dynamic ≈ 2+.
        assert!(sc.points[0].mean <= 1.80);
        assert!(dc.points[0].mean > sc.points[0].mean);
        // Static comm stays flat as the skew grows — the plan doesn't
        // change; its makespan explodes while dynamic stays near ideal.
        let last = sm.points.last().unwrap();
        assert!(
            last.mean > 2.0,
            "static makespan ratio at 8× skew: {}",
            last.mean
        );
        assert!(
            dm.points.last().unwrap().mean < 1.3,
            "dynamic makespan ratio at 8× skew: {}",
            dm.points.last().unwrap().mean
        );
        assert!(dm.points[0].mean < 1.3);
    }

    #[test]
    fn ext_b_both_models_tell_the_same_story() {
        let f = ext_dynamic_speed_models(&FigOpts::quick());
        let jitter = f.series("jitter (paper default here)").unwrap();
        let walk = f.series("compounding walk").unwrap();
        for (a, b) in jitter.points.iter().zip(&walk.points) {
            assert!(
                (a.mean - b.mean).abs() / a.mean < 0.15,
                "pct {}: jitter {} vs walk {}",
                a.x,
                a.mean,
                b.mean
            );
        }
    }

    #[test]
    fn ext_d_data_aware_cuts_dag_comm() {
        let f = ext_cholesky_policies(&FigOpts::quick());
        let random = f.series("RandomDag comm/task").unwrap();
        let aware = f.series("DataAwareDag comm/task").unwrap();
        for (r, a) in random.points.iter().zip(&aware.points) {
            assert!(
                a.mean < r.mean,
                "p={}: aware {} vs random {}",
                r.x,
                a.mean,
                r.mean
            );
        }
        // The critical-path tie-break costs no makespan on average
        // relative to pure data-affinity (point-wise noise allowed: quick
        // mode runs 3 trials).
        let cp = f.series("DataAwareCpDag makespan").unwrap();
        let da = f.series("DataAwareDag makespan").unwrap();
        assert!(
            cp.overall_mean() <= da.overall_mean() * 1.08,
            "cp {} vs data-aware {}",
            cp.overall_mean(),
            da.overall_mean()
        );
    }

    #[test]
    fn ext_f_tight_bandwidth_rewards_lower_volume() {
        let f = ext_bandwidth_crossover(&FigOpts::quick());
        let random = f.series("RandomOuter makespan").unwrap();
        let dynamic = f.series("DynamicOuter makespan").unwrap();
        // Comm-bound regime (lowest relative bandwidth): the data-aware
        // strategy's smaller volume is a real makespan win.
        assert!(
            dynamic.points[0].mean < random.points[0].mean * 0.95,
            "bw/Σs={}: dynamic {} vs random {}",
            dynamic.points[0].x,
            dynamic.points[0].mean,
            random.points[0].mean
        );
        // Compute-bound regime (highest relative bandwidth): both are near
        // the work-conserving ideal and the gap vanishes.
        let (dl, rl) = (
            dynamic.points.last().unwrap(),
            random.points.last().unwrap(),
        );
        assert!(dl.mean < 1.3 && rl.mean < 1.3, "{} / {}", dl.mean, rl.mean);
        assert!((dl.mean - rl.mean).abs() < 0.15);
    }

    #[test]
    fn ext_g_simulation_tracks_the_ode() {
        let f = ext_ode_overlay(&FigOpts::quick());
        let sim = f.series("simulated remaining").unwrap();
        let ana = f.series("analytic remaining").unwrap();
        assert!(sim.points.len() >= 10, "probe grid too sparse");
        // Work conservation: the probed residual fraction sits on 1 − τ up
        // to batch granularity and in-flight allocations.
        for pt in &sim.points {
            let predicted = (1.0 - pt.x).max(0.0);
            assert!(
                (pt.mean - predicted).abs() < 0.08,
                "τ={}: simulated {} vs analytic {}",
                pt.x,
                pt.mean,
                predicted
            );
        }
        // Both block trajectories are monotone and end in the same place
        // (every worker asymptotically learns the inputs it keeps using).
        let sb = f.series("simulated blocks").unwrap();
        let ab = f.series("analytic blocks").unwrap();
        for s in [sb, ab] {
            for w in s.points.windows(2) {
                assert!(w[1].mean >= w[0].mean - 1e-12);
            }
        }
        assert_eq!(ana.points.first().unwrap().mean, 1.0);
    }

    #[test]
    fn ext_c_flavours_agree_in_domain_of_interest() {
        let f = ext_analysis_flavours(&FigOpts::quick());
        let exact = f.series("Analysis (exact)").unwrap();
        let first = f.series("Analysis (first-order)").unwrap();
        for (e, fo) in exact.points.iter().zip(&first.points) {
            if e.x >= 3.0 && e.x <= 6.0 {
                assert!(
                    (e.mean - fo.mean).abs() / e.mean < 0.12,
                    "β={}: exact {} vs first-order {}",
                    e.x,
                    e.mean,
                    fo.mean
                );
            }
        }
    }
}
