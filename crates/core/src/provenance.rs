//! Run provenance: every artifact the workspace writes — `results/*.csv`,
//! `BENCH_*.json`, trace files — carries a manifest recording the seed, the
//! full experiment configuration, the thread count, and the build, so a
//! number in a file can always be traced back to the exact run that
//! produced it.
//!
//! Manifests are single-line JSON objects built by hand (the workspace has
//! no JSON dependency). They are embedded where the format allows (the
//! first JSONL line, Chrome's `otherData`, a top-level `manifest` key in
//! `BENCH_*.json`) and written as `<artifact>.manifest.json` sidecars next
//! to CSV files, which have nowhere to put structured metadata.

use crate::config::{ExperimentConfig, Kernel, Strategy};
use crate::figures::FigOpts;

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// `"tool":…` prefix fields shared by every manifest flavour: crate
/// version and build info (profile, OS, architecture).
fn tool_fields() -> String {
    format!(
        "\"tool\":\"hetsched\",\"version\":\"{}\",\"build\":\"{}\",\"os\":\"{}\",\"arch\":\"{}\"",
        env!("CARGO_PKG_VERSION"),
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        },
        std::env::consts::OS,
        std::env::consts::ARCH,
    )
}

/// One-line JSON manifest for a single-experiment artifact (a trace file,
/// a bench entry): seed, thread count, and the full [`ExperimentConfig`].
///
/// Enum-shaped fields (`distribution`, `speed_model`, `network`,
/// `failures`) are recorded as their `Debug` rendering inside a JSON
/// string — stable enough to reproduce a run from, without hand-writing a
/// serializer per type. `extra` appends caller-supplied `"key":value`
/// pairs whose values must already be valid JSON fragments.
pub fn manifest_json(
    cfg: &ExperimentConfig,
    seed: u64,
    threads: usize,
    extra: &[(&str, String)],
) -> String {
    let mut s = format!(
        "{{{},\"seed\":{},\"threads\":{},\"config\":{}",
        tool_fields(),
        seed,
        threads,
        config_json(cfg),
    );
    for (k, v) in extra {
        s.push_str(&format!(",\"{}\":{}", json_escape(k), v));
    }
    s.push('}');
    s
}

/// The `"config"` object of [`manifest_json`] on its own: the full
/// [`ExperimentConfig`] as a one-line JSON object, seed- and
/// build-independent. Two configs render identically exactly when every
/// field the runner consults matches, which is what makes this string the
/// natural input for a config hash (the trace-analytics store keys runs
/// by it).
pub fn config_json(cfg: &ExperimentConfig) -> String {
    let kernel = match cfg.kernel {
        Kernel::Outer { .. } => "outer",
        Kernel::Matmul { .. } => "matmul",
    };
    // The label alone would collapse every two-phase β choice onto one
    // key — `--beta 1` and `--beta 4` are different experiments, so the
    // β mode rides in a separate field.
    let beta_mode = match cfg.strategy {
        Strategy::TwoPhase(choice) => format!("\"{}\"", json_escape(&format!("{choice:?}"))),
        _ => "null".to_string(),
    };
    // `tree_threads` is deliberately omitted: shard threading is
    // bit-identical for every value, so it must not split a config key.
    format!(
        "{{\"kernel\":\"{}\",\"n\":{},\"strategy\":\"{}\",\"beta_mode\":{},\"processors\":{},\"distribution\":\"{}\",\"speed_model\":\"{}\",\"network\":\"{}\",\"link_latency\":{},\"failures\":\"{}\",\"topology\":\"{}\",\"price_returns\":{},\"link_bandwidths\":{}}}",
        kernel,
        cfg.kernel.n(),
        cfg.strategy.label(cfg.kernel),
        beta_mode,
        cfg.processors,
        json_escape(&format!("{:?}", cfg.distribution)),
        json_escape(&format!("{:?}", cfg.speed_model)),
        json_escape(&format!("{:?}", cfg.network)),
        cfg.link_latency,
        json_escape(&format!("{:?}", cfg.failures)),
        json_escape(&format!("{:?}", cfg.topology)),
        cfg.price_returns,
        match &cfg.link_bandwidths {
            Some(bws) => format!("\"{}\"", json_escape(&format!("{bws:?}"))),
            None => "null".to_string(),
        },
    )
}

/// One-line JSON manifest for a figure artifact: the figure id plus the
/// [`FigOpts`] that produced it (trials, seed, quick mode, threads).
pub fn figure_manifest_json(id: &str, opts: &FigOpts) -> String {
    format!(
        "{{{},\"figure\":\"{}\",\"seed\":{},\"trials\":{},\"hetero_trials\":{},\"quick\":{},\"threads\":{}}}",
        tool_fields(),
        json_escape(id),
        opts.seed,
        opts.trials,
        opts.hetero_trials,
        opts.quick,
        match opts.threads {
            Some(t) => t.to_string(),
            None => "null".to_string(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_balanced(s: &str) {
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in s.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced: {s}");
        }
        assert_eq!(depth, 0, "unbalanced: {s}");
        assert!(!in_str, "unterminated string: {s}");
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\u{1}"), "x\\n\\t\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn manifest_records_seed_config_and_build() {
        let cfg = ExperimentConfig::default();
        let m = manifest_json(&cfg, 42, 3, &[("note", "\"hi\"".into())]);
        assert_balanced(&m);
        assert!(!m.contains('\n'), "manifest must be a single line");
        assert!(m.contains("\"seed\":42"));
        assert!(m.contains("\"threads\":3"));
        assert!(m.contains("\"strategy\":\"DynamicOuter2Phases\""));
        assert!(m.contains("\"kernel\":\"outer\""));
        assert!(m.contains("\"n\":100"));
        assert!(m.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))));
        assert!(m.contains("\"note\":\"hi\""));
    }

    #[test]
    fn figure_manifest_records_opts() {
        let m = figure_manifest_json("extG", &FigOpts::quick());
        assert_balanced(&m);
        assert!(m.contains("\"figure\":\"extG\""));
        assert!(m.contains("\"quick\":true"));
        let full = figure_manifest_json("fig2", &FigOpts::paper());
        assert!(full.contains("\"threads\":null") || full.contains("\"threads\":"));
        assert_balanced(&full);
    }
}
