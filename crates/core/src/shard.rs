//! Top-level shard planning for the hierarchical tree topology.
//!
//! The root of a [`Topology::Tree`](hetsched_sim::Topology) run partitions
//! both the workers and the task grid across its sub-masters:
//!
//! * **workers** are split into contiguous, near-equal-count slices (the
//!   sub-masters are wiring, not speed classes — heterogeneity inside a
//!   slice is what the shard's own dynamic strategy handles);
//! * **the task grid** is split by the optimal column-structured partition
//!   of the unit square ([`optimal_column_partition`]), with one area per
//!   sub-master equal to its slice's aggregate relative speed, discretized
//!   onto the `n × n` grid by [`GridPartition`]'s largest-remainder
//!   rounding — so each shard's task share tracks its compute share and
//!   the shards tile the grid exactly.
//!
//! With a single sub-master the plan is one shard owning every worker and
//! the full grid, which is how the tree collapses to the flat engine.

use hetsched_partition::{optimal_column_partition, GridPartition, GridRect};
use hetsched_platform::Platform;

/// One sub-master's slice of the platform and of the task grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardLayout {
    /// First global worker index of the shard.
    pub start: usize,
    /// Number of (contiguous) workers in the shard.
    pub len: usize,
    /// The shard's task rectangle on the `n × n` grid (possibly empty for
    /// a very slow shard on a coarse grid).
    pub rect: GridRect,
}

impl ShardLayout {
    /// Rows of the shard's task rectangle.
    pub fn rows(&self) -> usize {
        (self.rect.r1 - self.rect.r0) as usize
    }

    /// Columns of the shard's task rectangle.
    pub fn cols(&self) -> usize {
        (self.rect.c1 - self.rect.c0) as usize
    }
}

/// Plans the top-level split of `platform` and an `n × n` task grid across
/// `submasters` sub-masters. Deterministic in its inputs (no RNG).
///
/// # Panics
///
/// If `submasters` is zero or exceeds the worker count (callers validate
/// via [`Topology::validate`](hetsched_sim::Topology::validate)).
pub fn plan_shards(platform: &Platform, submasters: usize, n: usize) -> Vec<ShardLayout> {
    let p = platform.len();
    assert!(
        submasters >= 1 && submasters <= p,
        "need 1 ≤ submasters ≤ {p}, got {submasters}"
    );

    // Contiguous near-equal-count worker slices: the first `p % k` slices
    // get one extra worker.
    let base = p / submasters;
    let extra = p % submasters;
    let mut starts = Vec::with_capacity(submasters);
    let mut cursor = 0usize;
    for j in 0..submasters {
        let len = base + usize::from(j < extra);
        starts.push((cursor, len));
        cursor += len;
    }
    debug_assert_eq!(cursor, p);

    // Optimal top-level grid split: one area per sub-master, proportional
    // to its slice's aggregate speed.
    let total = platform.total_speed();
    let areas: Vec<f64> = starts
        .iter()
        .map(|&(start, len)| platform.speeds()[start..start + len].iter().sum::<f64>() / total)
        .collect();
    let partition = optimal_column_partition(&areas);
    let grid = GridPartition::from_continuous(&partition, n);

    starts
        .iter()
        .zip(&grid.rects)
        .map(|(&(start, len), &rect)| ShardLayout { start, len, rect })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_submaster_owns_everything() {
        let pf = Platform::from_speeds(vec![10.0, 30.0, 60.0]);
        let plan = plan_shards(&pf, 1, 25);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].start, 0);
        assert_eq!(plan[0].len, 3);
        assert_eq!(plan[0].rows(), 25);
        assert_eq!(plan[0].cols(), 25);
        assert_eq!(plan[0].rect.tasks(), 625);
    }

    #[test]
    fn shards_tile_workers_and_grid_exactly() {
        let pf = Platform::from_speeds(vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0]);
        for k in 1..=4 {
            let n = 40;
            let plan = plan_shards(&pf, k, n);
            assert_eq!(plan.len(), k);
            // Workers: contiguous cover of 0..p, near-equal counts.
            let mut cursor = 0;
            for s in &plan {
                assert_eq!(s.start, cursor);
                assert!(s.len >= 7 / k);
                cursor += s.len;
            }
            assert_eq!(cursor, 7);
            // Grid: the rectangles tile n × n exactly.
            let total: usize = plan.iter().map(|s| s.rect.tasks()).sum();
            assert_eq!(total, n * n, "k = {k}");
        }
    }

    #[test]
    fn task_share_tracks_shard_speed_share() {
        // Two shards: workers {0,1} at speed 10 each, workers {2,3} at 30
        // each — shard speeds 20 vs 60, so shard 1 should get ~3/4 of the
        // tasks.
        let pf = Platform::from_speeds(vec![10.0, 10.0, 30.0, 30.0]);
        let n = 100;
        let plan = plan_shards(&pf, 2, n);
        let share1 = plan[1].rect.tasks() as f64 / (n * n) as f64;
        assert!(
            (share1 - 0.75).abs() < 0.05,
            "fast shard share {share1} should be near 0.75"
        );
    }

    #[test]
    fn plan_is_deterministic() {
        let pf = Platform::from_speeds(vec![15.0, 25.0, 35.0, 45.0, 55.0]);
        assert_eq!(plan_shards(&pf, 3, 50), plan_shards(&pf, 3, 50));
    }
}
