//! Figure data model and CSV rendering.

use std::fmt::Write as _;

/// One plotted point: x-coordinate, mean over trials, standard deviation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    pub x: f64,
    pub mean: f64,
    pub std_dev: f64,
}

/// One curve of a figure.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (paper strategy names, or "Analysis").
    pub label: String,
    pub points: Vec<Point>,
}

impl Series {
    /// New empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, mean: f64, std_dev: f64) {
        self.points.push(Point { x, mean, std_dev });
    }

    /// Mean of the series' means (for scalar comparisons in tests).
    pub fn overall_mean(&self) -> f64 {
        if self.points.is_empty() {
            return f64::NAN;
        }
        self.points.iter().map(|p| p.mean).sum::<f64>() / self.points.len() as f64
    }
}

/// All data behind one figure of the paper.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Stable id, e.g. `"fig4"`.
    pub id: &'static str,
    /// Human title (what the figure shows).
    pub title: String,
    /// Meaning of the x-axis.
    pub x_label: String,
    /// Meaning of the y-axis (always a normalized communication amount
    /// here, but kept explicit).
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Finds a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the figure as long-form CSV:
    /// `figure,series,x,mean,std_dev`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("figure,series,x,mean,std_dev\n");
        for s in &self.series {
            for p in &s.points {
                writeln!(
                    out,
                    "{},{},{},{:.6},{:.6}",
                    self.id, s.label, p.x, p.mean, p.std_dev
                )
                .expect("string write");
            }
        }
        out
    }

    /// Renders an aligned text table (one row per x, one column per
    /// series) — what the `figures` binary prints.
    pub fn to_table(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();

        let mut out = String::new();
        writeln!(out, "# {} — {}", self.id, self.title).expect("write");
        write!(out, "{:>12}", self.x_label).expect("write");
        for s in &self.series {
            write!(out, "  {:>22}", s.label).expect("write");
        }
        out.push('\n');
        for &x in &xs {
            write!(out, "{x:>12.3}").expect("write");
            for s in &self.series {
                match s.points.iter().find(|p| (p.x - x).abs() < 1e-9) {
                    Some(p) => {
                        write!(out, "  {:>13.3} ±{:>6.3}", p.mean, p.std_dev).expect("write")
                    }
                    None => write!(out, "  {:>22}", "-").expect("write"),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> FigureData {
        let mut a = Series::new("A");
        a.push(1.0, 2.0, 0.1);
        a.push(2.0, 3.0, 0.2);
        let mut b = Series::new("B");
        b.push(1.0, 4.0, 0.0);
        FigureData {
            id: "figX",
            title: "test".into(),
            x_label: "p".into(),
            y_label: "norm comm".into(),
            series: vec![a, b],
        }
    }

    #[test]
    fn csv_layout() {
        let csv = sample_figure().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "figure,series,x,mean,std_dev");
        assert_eq!(lines[1], "figX,A,1,2.000000,0.100000");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn table_contains_all_series_and_gaps() {
        let t = sample_figure().to_table();
        assert!(t.contains("figX"));
        assert!(t.contains('A') && t.contains('B'));
        // B has no point at x=2 → a dash.
        assert!(t.contains('-'));
    }

    #[test]
    fn empty_series_mean_is_nan_and_renders() {
        let f = FigureData {
            id: "figE",
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series::new("E")],
        };
        assert!(f.series("E").unwrap().overall_mean().is_nan());
        // Rendering an empty figure must not panic.
        let t = f.to_table();
        assert!(t.contains("figE"));
        assert_eq!(f.to_csv().lines().count(), 1, "header only");
    }

    #[test]
    fn series_lookup_and_mean() {
        let f = sample_figure();
        assert!(f.series("A").is_some());
        assert!(f.series("missing").is_none());
        assert!((f.series("A").unwrap().overall_mean() - 2.5).abs() < 1e-12);
    }
}
