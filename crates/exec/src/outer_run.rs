//! Real execution of the outer product under any scheduler.

use crate::block::{outer_kernel, BlockedMatrix, BlockedVector};
use crate::protocol::{BlockTag, ExecConfig, ExecReport, InjectedFault, Job, ToMaster, ToWorker};
use crossbeam::channel::{unbounded, Receiver, Sender};
use hetsched_platform::ProcId;
use hetsched_sim::Scheduler;
use hetsched_util::rng::rng_for;
use hetsched_util::FixedBitSet;
use std::hint::black_box;

/// Executes `M = a·bᵗ` with `cfg.speeds.len()` worker threads driven by
/// `scheduler`. Returns the assembled matrix and the execution report.
///
/// The scheduler must have been constructed for `n = a.n_blocks()` blocks
/// and `p = cfg.speeds.len()` workers (`total_tasks() == n²`).
pub fn run_outer<S: Scheduler>(
    mut scheduler: S,
    a: &BlockedVector,
    b: &BlockedVector,
    cfg: &ExecConfig,
) -> (BlockedMatrix, ExecReport) {
    let n = a.n_blocks();
    let l = a.l();
    assert_eq!(b.n_blocks(), n);
    assert_eq!(b.l(), l);
    let p = cfg.speeds.len();
    assert_eq!(
        scheduler.total_tasks(),
        n * n,
        "scheduler sized for a different problem"
    );

    let mut rng = rng_for(cfg.seed, 0xE8EC);
    let (to_master_tx, to_master_rx): (Sender<ToMaster>, Receiver<ToMaster>) = unbounded();
    let worker_channels: Vec<(Sender<ToWorker>, Receiver<ToWorker>)> =
        (0..p).map(|_| unbounded()).collect();

    // Master-side record of which blocks each worker has been shipped.
    let mut sent_a: Vec<FixedBitSet> = (0..p).map(|_| FixedBitSet::new(n)).collect();
    let mut sent_b: Vec<FixedBitSet> = (0..p).map(|_| FixedBitSet::new(n)).collect();

    let mut result = BlockedMatrix::zeros(n, l);
    let mut report = ExecReport {
        input_blocks_shipped: 0,
        result_blocks_returned: 0,
        tasks_per_worker: vec![0; p],
        jobs_per_worker: vec![0; p],
        tasks_lost_per_worker: vec![0; p],
    };

    // Workers whose injected fault has not yet fired or been cancelled.
    let mut fault_pending: Vec<bool> = (0..p).map(|w| cfg.fail_after(w).is_some()).collect();
    let mut pending_count = fault_pending.iter().filter(|&&b| b).count();
    assert!(
        pending_count < p,
        "at least one worker must survive the faults"
    );

    crossbeam::thread::scope(|scope| {
        for (w, (_, rx)) in worker_channels.iter().enumerate() {
            let rx = rx.clone();
            let tx = to_master_tx.clone();
            let fault_tx = to_master_tx.clone();
            let factor = cfg.work_factor(w);
            let fail_after = cfg.fail_after(w);
            scope.spawn(move |_| {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker_loop(w, n, l, factor, fail_after, rx, tx)
                })) {
                    Ok(()) => {}
                    Err(payload) if payload.is::<InjectedFault>() => {
                        let _ = fault_tx.send(ToMaster::Failed { worker: w });
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            });
        }
        drop(to_master_tx);

        // Every task id a worker currently holds unflushed results for.
        let mut assigned: Vec<Vec<u32>> = vec![Vec::new(); p];
        // Requests that cannot be answered yet: the pool is drained but a
        // pending fault may still return lost tasks to it.
        let mut parked: Vec<usize> = Vec::new();
        let mut live = p;

        while live > 0 {
            match to_master_rx.recv().expect("workers alive while live > 0") {
                ToMaster::Request { worker } => parked.push(worker),
                ToMaster::Results { worker, blocks } => {
                    report.result_blocks_returned += blocks.len() as u64;
                    for ((i, j), data) in blocks {
                        result.add_block(i as usize, j as usize, &data);
                    }
                    assigned[worker].clear();
                    live -= 1;
                }
                ToMaster::Failed { worker } => {
                    // The thread is gone and its locally held results with
                    // it: return everything it was assigned to the pool.
                    live -= 1;
                    debug_assert!(fault_pending[worker]);
                    fault_pending[worker] = false;
                    pending_count -= 1;
                    let lost = std::mem::take(&mut assigned[worker]);
                    report.tasks_per_worker[worker] -= lost.len() as u64;
                    report.tasks_lost_per_worker[worker] += lost.len() as u64;
                    scheduler.on_tasks_lost(&lost);
                }
            }

            loop {
                // Serve parked requests until none can make progress.
                loop {
                    let mut progress = false;
                    let mut idx = 0;
                    while idx < parked.len() {
                        let worker = parked[idx];
                        if scheduler.remaining() == 0 {
                            let own = fault_pending[worker] as usize;
                            if pending_count - own > 0 {
                                // Some *other* worker may still die and
                                // return tasks; keep this request parked.
                                idx += 1;
                                continue;
                            }
                            // This worker's own fault (if any) can never
                            // fire while it idles on an empty pool: cancel
                            // it and let the worker shut down below.
                            if fault_pending[worker] {
                                fault_pending[worker] = false;
                                pending_count -= 1;
                            }
                        }
                        let mut tasks = Vec::new();
                        let alloc = if scheduler.remaining() == 0 {
                            hetsched_sim::Allocation::DONE
                        } else {
                            scheduler.on_request(ProcId(worker as u32), &mut rng, &mut tasks)
                        };
                        if alloc.is_done() {
                            worker_channels[worker]
                                .0
                                .send(ToWorker::Shutdown)
                                .expect("worker waiting");
                            parked.remove(idx);
                            progress = true;
                            continue;
                        }
                        debug_assert_eq!(tasks.len(), alloc.tasks);
                        report.tasks_per_worker[worker] += tasks.len() as u64;
                        report.jobs_per_worker[worker] += 1;
                        assigned[worker].extend_from_slice(&tasks);

                        // Ship exactly the blocks these tasks need and the
                        // worker lacks. (A data-aware scheduler may have
                        // *accounted* for more — blocks bought by extensions
                        // that enabled nothing; see the exec-vs-sim tests.)
                        let mut blocks = Vec::new();
                        for &id in &tasks {
                            let (i, j) = ((id as usize) / n, (id as usize) % n);
                            if sent_a[worker].insert(i) {
                                blocks.push((BlockTag::A(i as u32), a.copy_block(i)));
                            }
                            if sent_b[worker].insert(j) {
                                blocks.push((BlockTag::B(j as u32), b.copy_block(j)));
                            }
                        }
                        report.input_blocks_shipped += blocks.len() as u64;
                        worker_channels[worker]
                            .0
                            .send(ToWorker::Job(Job { tasks, blocks }))
                            .expect("worker waiting");
                        parked.remove(idx);
                        progress = true;
                    }
                    if !progress {
                        break;
                    }
                }
                // Deadlock breaker: if every live worker is parked on an
                // empty pool, the remaining pending faults (all on parked,
                // hence idle, workers) can never fire. Cancel them and
                // re-serve so everyone shuts down.
                if parked.len() == live && scheduler.remaining() == 0 && pending_count > 0 {
                    for &w in &parked {
                        if fault_pending[w] {
                            fault_pending[w] = false;
                            pending_count -= 1;
                        }
                    }
                    continue;
                }
                break;
            }
        }
    })
    .expect("worker thread panicked");

    (result, report)
}

/// Worker side: hold received blocks, compute assigned outer-product
/// blocks, flush everything on shutdown.
fn worker_loop(
    worker: usize,
    n: usize,
    l: usize,
    work_factor: u32,
    fail_after: Option<u64>,
    rx: Receiver<ToWorker>,
    tx: Sender<ToMaster>,
) {
    let mut store_a: Vec<Option<Vec<f64>>> = vec![None; n];
    let mut store_b: Vec<Option<Vec<f64>>> = vec![None; n];
    let mut results: Vec<((u32, u32), Vec<f64>)> = Vec::new();
    let mut completed = 0u64;
    // Accumulated sleep owed by the speed emulation; flushed in chunks
    // large enough to beat the OS timer granularity (~50 µs), so emulated
    // speed ratios stay accurate even for microsecond kernels.
    let mut sleep_debt = std::time::Duration::ZERO;

    tx.send(ToMaster::Request { worker }).expect("master alive");
    loop {
        match rx.recv().expect("master alive") {
            ToWorker::Job(job) => {
                for (tag, data) in job.blocks {
                    match tag {
                        BlockTag::A(i) => store_a[i as usize] = Some(data),
                        BlockTag::B(j) => store_b[j as usize] = Some(data),
                    }
                }
                for id in job.tasks {
                    if Some(completed) == fail_after {
                        // Injected fault: die as if the thread was killed,
                        // taking the locally held results down with it.
                        std::panic::panic_any(InjectedFault);
                    }
                    let (i, j) = ((id as usize) / n, (id as usize) % n);
                    let ab = store_a[i].as_deref().expect("a block shipped");
                    let bb = store_b[j].as_deref().expect("b block shipped");
                    let mut c = vec![0.0; l * l];
                    // Emulated heterogeneity: compute once for real, then
                    // sleep the extra (factor − 1) kernel durations. Sleeping
                    // (instead of re-running the kernel) keeps the wall-clock
                    // speed ratio honest even when workers outnumber cores.
                    let t0 = std::time::Instant::now();
                    outer_kernel(black_box(ab), black_box(bb), &mut c);
                    if work_factor > 1 {
                        sleep_debt += t0.elapsed() * (work_factor - 1);
                        if sleep_debt >= std::time::Duration::from_micros(200) {
                            std::thread::sleep(sleep_debt);
                            sleep_debt = std::time::Duration::ZERO;
                        }
                    }
                    results.push(((i as u32, j as u32), c));
                    completed += 1;
                }
                tx.send(ToMaster::Request { worker }).expect("master alive");
            }
            ToWorker::Shutdown => {
                tx.send(ToMaster::Results {
                    worker,
                    blocks: std::mem::take(&mut results),
                })
                .expect("master alive");
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::reference_outer;
    use hetsched_outer::{DynamicOuter, DynamicOuter2Phases, RandomOuter, SortedOuter};

    fn check<S: Scheduler>(scheduler: S, n: usize, l: usize, cfg: &ExecConfig) -> ExecReport {
        let a = BlockedVector::random(n, l, 11);
        let b = BlockedVector::random(n, l, 22);
        let (m, report) = run_outer(scheduler, &a, &b, cfg);
        let reference = reference_outer(&a, &b);
        // Outer product blocks are computed exactly once each: equality is
        // exact (no accumulation-order effects).
        assert_eq!(m.max_abs_diff(&reference), 0.0);
        assert_eq!(report.total_tasks(), (n * n) as u64);
        report
    }

    #[test]
    fn dynamic_outer_executes_correctly() {
        let cfg = ExecConfig::homogeneous(4, 1);
        let report = check(DynamicOuter::new(12, 4), 12, 4, &cfg);
        assert_eq!(report.result_blocks_returned, 144);
        assert!(report.input_blocks_shipped >= 2 * 12);
    }

    #[test]
    fn random_outer_executes_correctly() {
        let cfg = ExecConfig::homogeneous(3, 2);
        check(RandomOuter::new(10, 3), 10, 3, &cfg);
    }

    #[test]
    fn sorted_outer_executes_correctly() {
        let cfg = ExecConfig::homogeneous(3, 3);
        check(SortedOuter::new(8, 3), 8, 2, &cfg);
    }

    #[test]
    fn two_phase_executes_correctly() {
        let cfg = ExecConfig::homogeneous(5, 4);
        check(DynamicOuter2Phases::with_beta(14, 5, 3.0), 14, 3, &cfg);
    }

    #[test]
    fn heterogeneous_speeds_skew_task_shares() {
        // Blocks must be big enough that the kernel dominates channel
        // round-trips, otherwise both workers alternate in lock-step and
        // the emulated speeds cannot show.
        let cfg = ExecConfig {
            speeds: vec![1.0, 8.0],
            seed: 5,
            faults: Vec::new(),
        };
        let report = check(RandomOuter::new(16, 2), 16, 96, &cfg);
        // The 8× worker must do clearly more tasks (timing noise allowed,
        // hence a loose 1.5× assertion for a nominal 8× gap).
        let slow = report.tasks_per_worker[0] as f64;
        let fast = report.tasks_per_worker[1] as f64;
        assert!(fast > 1.5 * slow, "fast worker did {fast}, slow did {slow}");
    }

    #[test]
    fn lazy_shipping_never_exceeds_two_blocks_per_task() {
        let cfg = ExecConfig::homogeneous(4, 6);
        let report = check(RandomOuter::new(10, 4), 10, 2, &cfg);
        assert!(report.input_blocks_shipped <= 2 * 100);
        // And never below the single-copy minimum for the blocks used.
        assert!(report.input_blocks_shipped >= 2 * 10);
    }

    #[test]
    fn single_worker_matches_lower_bound_exactly() {
        let cfg = ExecConfig::homogeneous(1, 7);
        let report = check(DynamicOuter::new(9, 1), 9, 2, &cfg);
        assert_eq!(report.input_blocks_shipped, 18);
    }

    #[test]
    fn killed_worker_is_recovered_exactly_once() {
        // Worker 1's thread dies after 5 completed tasks, losing every
        // result it held. The master re-queues its assignments and the
        // survivors produce a bit-exact matrix anyway.
        let cfg = ExecConfig::homogeneous(3, 8).fail_after_tasks(1, 5);
        let report = check(RandomOuter::new(10, 3), 10, 3, &cfg);
        assert!(report.total_tasks_lost() > 0, "fault never fired");
        assert!(report.tasks_lost_per_worker[1] >= 5);
        assert_eq!(report.tasks_lost_per_worker[0], 0);
        assert_eq!(report.tasks_lost_per_worker[2], 0);
    }

    #[test]
    fn killed_worker_recovery_works_for_data_aware_strategies() {
        for seed in [1u64, 2, 3] {
            let cfg = ExecConfig::homogeneous(4, seed).fail_after_tasks(2, 8);
            let report = check(DynamicOuter2Phases::with_beta(12, 4, 3.0), 12, 2, &cfg);
            assert!(
                report.total_tasks_lost() > 0,
                "fault never fired (seed {seed})"
            );
        }
    }

    #[test]
    fn unfireable_fault_is_cancelled() {
        // Threshold far above the task count: the fault can never fire and
        // the run must terminate normally, losing nothing.
        let cfg = ExecConfig::homogeneous(2, 9).fail_after_tasks(0, 1_000_000);
        let report = check(RandomOuter::new(6, 2), 6, 2, &cfg);
        assert_eq!(report.total_tasks_lost(), 0);
    }
}
