//! Real execution of the matrix multiplication under any scheduler.

use crate::block::{gemm_kernel, BlockedMatrix};
use crate::protocol::{BlockTag, ExecConfig, ExecReport, Job, ToMaster, ToWorker};
use crossbeam::channel::{unbounded, Receiver, Sender};
use hetsched_platform::ProcId;
use hetsched_sim::Scheduler;
use hetsched_util::rng::rng_for;
use hetsched_util::FixedBitSet;
use std::collections::HashMap;
use std::hint::black_box;

/// Executes `C = A·B` with `cfg.speeds.len()` worker threads driven by
/// `scheduler` (`total_tasks() == n³` for `n = a.n_blocks()`).
///
/// Each worker accumulates its `C[i,j]` contributions locally and flushes
/// them at shutdown; the master sums the per-worker contributions. Result
/// blocks therefore travel once per (worker, C-block) pair, matching the
/// paper's accounting where `C` traffic is deferred to the end of the
/// computation.
pub fn run_matmul<S: Scheduler>(
    mut scheduler: S,
    a: &BlockedMatrix,
    b: &BlockedMatrix,
    cfg: &ExecConfig,
) -> (BlockedMatrix, ExecReport) {
    let n = a.n_blocks();
    let l = a.l();
    assert_eq!(b.n_blocks(), n);
    assert_eq!(b.l(), l);
    let p = cfg.speeds.len();
    assert_eq!(
        scheduler.total_tasks(),
        n * n * n,
        "scheduler sized for a different problem"
    );

    let mut rng = rng_for(cfg.seed, 0xE8ED);
    let (to_master_tx, to_master_rx): (Sender<ToMaster>, Receiver<ToMaster>) = unbounded();
    let worker_channels: Vec<(Sender<ToWorker>, Receiver<ToWorker>)> =
        (0..p).map(|_| unbounded()).collect();

    let mut sent_a: Vec<FixedBitSet> = (0..p).map(|_| FixedBitSet::new(n * n)).collect();
    let mut sent_b: Vec<FixedBitSet> = (0..p).map(|_| FixedBitSet::new(n * n)).collect();

    let mut result = BlockedMatrix::zeros(n, l);
    let mut report = ExecReport {
        input_blocks_shipped: 0,
        result_blocks_returned: 0,
        tasks_per_worker: vec![0; p],
        jobs_per_worker: vec![0; p],
    };

    crossbeam::thread::scope(|scope| {
        for (w, (_, rx)) in worker_channels.iter().enumerate() {
            let rx = rx.clone();
            let tx = to_master_tx.clone();
            let factor = cfg.work_factor(w);
            scope.spawn(move |_| worker_loop(w, n, l, factor, rx, tx));
        }
        drop(to_master_tx);

        let mut live = p;
        while live > 0 {
            match to_master_rx.recv().expect("workers alive while live > 0") {
                ToMaster::Request { worker } => {
                    let alloc = if scheduler.remaining() == 0 {
                        hetsched_sim::Allocation::DONE
                    } else {
                        scheduler.on_request(ProcId(worker as u32), &mut rng)
                    };
                    if alloc.is_done() {
                        worker_channels[worker]
                            .0
                            .send(ToWorker::Shutdown)
                            .expect("worker waiting");
                        continue;
                    }
                    let tasks = scheduler.last_allocated().to_vec();
                    debug_assert_eq!(tasks.len(), alloc.tasks);
                    report.tasks_per_worker[worker] += tasks.len() as u64;
                    report.jobs_per_worker[worker] += 1;

                    let mut blocks = Vec::new();
                    for &id in &tasks {
                        let (i, j, k) = decode(id, n);
                        let a_id = i * n + k;
                        let b_id = k * n + j;
                        if sent_a[worker].insert(a_id) {
                            blocks.push((BlockTag::A(a_id as u32), a.copy_block(i, k)));
                        }
                        if sent_b[worker].insert(b_id) {
                            blocks.push((BlockTag::B(b_id as u32), b.copy_block(k, j)));
                        }
                    }
                    report.input_blocks_shipped += blocks.len() as u64;
                    worker_channels[worker]
                        .0
                        .send(ToWorker::Job(Job { tasks, blocks }))
                        .expect("worker waiting");
                }
                ToMaster::Results { worker: _, blocks } => {
                    report.result_blocks_returned += blocks.len() as u64;
                    for ((i, j), data) in blocks {
                        result.add_block(i as usize, j as usize, &data);
                    }
                    live -= 1;
                }
            }
        }
    })
    .expect("worker thread panicked");

    (result, report)
}

#[inline]
fn decode(id: u32, n: usize) -> (usize, usize, usize) {
    let id = id as usize;
    let k = id % n;
    let rest = id / n;
    (rest / n, rest % n, k)
}

fn worker_loop(
    worker: usize,
    n: usize,
    l: usize,
    work_factor: u32,
    rx: Receiver<ToWorker>,
    tx: Sender<ToMaster>,
) {
    let mut store_a: HashMap<usize, Vec<f64>> = HashMap::new();
    let mut store_b: HashMap<usize, Vec<f64>> = HashMap::new();
    // Local C accumulators, keyed by (i, j).
    let mut acc: HashMap<(u32, u32), Vec<f64>> = HashMap::new();
    // Sleep owed by the speed emulation, flushed in ≥200 µs chunks to beat
    // the OS timer granularity (see outer_run.rs).
    let mut sleep_debt = std::time::Duration::ZERO;

    tx.send(ToMaster::Request { worker }).expect("master alive");
    loop {
        match rx.recv().expect("master alive") {
            ToWorker::Job(job) => {
                for (tag, data) in job.blocks {
                    match tag {
                        BlockTag::A(id) => {
                            store_a.insert(id as usize, data);
                        }
                        BlockTag::B(id) => {
                            store_b.insert(id as usize, data);
                        }
                    }
                }
                for id in job.tasks {
                    let (i, j, k) = decode(id, n);
                    let ab = store_a.get(&(i * n + k)).expect("A block shipped");
                    let bb = store_b.get(&(k * n + j)).expect("B block shipped");
                    let c = acc
                        .entry((i as u32, j as u32))
                        .or_insert_with(|| vec![0.0; l * l]);
                    // Emulated heterogeneity: compute once for real, then
                    // sleep the extra (factor − 1) kernel durations (honest
                    // wall-clock ratios even with more workers than cores).
                    let t0 = std::time::Instant::now();
                    gemm_kernel(l, black_box(ab), black_box(bb), c);
                    if work_factor > 1 {
                        sleep_debt += t0.elapsed() * (work_factor - 1);
                        if sleep_debt >= std::time::Duration::from_micros(200) {
                            std::thread::sleep(sleep_debt);
                            sleep_debt = std::time::Duration::ZERO;
                        }
                    }
                }
                tx.send(ToMaster::Request { worker }).expect("master alive");
            }
            ToWorker::Shutdown => {
                let mut blocks: Vec<((u32, u32), Vec<f64>)> = acc.drain().collect();
                // Deterministic flush order (HashMap iteration is not).
                blocks.sort_by_key(|(ij, _)| *ij);
                tx.send(ToMaster::Results { worker, blocks })
                    .expect("master alive");
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::reference_matmul;
    use hetsched_matmul::{DynamicMatrix, DynamicMatrix2Phases, RandomMatrix, SortedMatrix};

    fn check<S: Scheduler>(
        scheduler: S,
        n: usize,
        l: usize,
        cfg: &ExecConfig,
    ) -> (BlockedMatrix, ExecReport) {
        let a = BlockedMatrix::random(n, l, 31);
        let b = BlockedMatrix::random(n, l, 32);
        let (c, report) = run_matmul(scheduler, &a, &b, cfg);
        let reference = reference_matmul(&a, &b);
        // Contributions are summed in arrival order at the master, so allow
        // floating-point reassociation noise.
        let diff = c.max_abs_diff(&reference);
        assert!(diff < 1e-10, "numerical mismatch: {diff}");
        assert_eq!(report.total_tasks(), (n * n * n) as u64);
        (c, report)
    }

    #[test]
    fn dynamic_matrix_executes_correctly() {
        let cfg = ExecConfig::homogeneous(4, 1);
        let (_, report) = check(DynamicMatrix::new(6, 4), 6, 4, &cfg);
        // Every worker that computed anything returns ≥ 1 C block; at most
        // p·n² total.
        assert!(report.result_blocks_returned <= 4 * 36);
        assert!(report.result_blocks_returned >= 36);
    }

    #[test]
    fn random_matrix_executes_correctly() {
        let cfg = ExecConfig::homogeneous(3, 2);
        check(RandomMatrix::new(5, 3), 5, 3, &cfg);
    }

    #[test]
    fn sorted_matrix_executes_correctly() {
        let cfg = ExecConfig::homogeneous(2, 3);
        check(SortedMatrix::new(4, 2), 4, 2, &cfg);
    }

    #[test]
    fn two_phase_matrix_executes_correctly() {
        let cfg = ExecConfig::homogeneous(5, 4);
        check(DynamicMatrix2Phases::with_beta(6, 5, 2.5), 6, 3, &cfg);
    }

    #[test]
    fn single_worker_ships_every_input_block_once() {
        let cfg = ExecConfig::homogeneous(1, 5);
        let (_, report) = check(DynamicMatrix::new(5, 1), 5, 2, &cfg);
        // 2n² input blocks (A and B; C never travels to workers here).
        assert_eq!(report.input_blocks_shipped, 50);
        assert_eq!(report.result_blocks_returned, 25);
    }

    #[test]
    fn heterogeneous_speeds_skew_task_shares() {
        // Large enough blocks that the gemm kernel dominates messaging.
        let cfg = ExecConfig {
            speeds: vec![1.0, 6.0],
            seed: 9,
        };
        let (_, report) = check(RandomMatrix::new(6, 2), 6, 24, &cfg);
        let slow = report.tasks_per_worker[0] as f64;
        let fast = report.tasks_per_worker[1] as f64;
        assert!(fast > 1.5 * slow, "fast {fast} vs slow {slow}");
    }
}
