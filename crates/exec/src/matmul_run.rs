//! Real execution of the matrix multiplication under any scheduler.

use crate::block::{gemm_kernel, BlockedMatrix};
use crate::protocol::{BlockTag, ExecConfig, ExecReport, InjectedFault, Job, ToMaster, ToWorker};
use crossbeam::channel::{unbounded, Receiver, Sender};
use hetsched_platform::ProcId;
use hetsched_sim::Scheduler;
use hetsched_util::rng::rng_for;
use hetsched_util::FixedBitSet;
use std::collections::HashMap;
use std::hint::black_box;

/// Executes `C = A·B` with `cfg.speeds.len()` worker threads driven by
/// `scheduler` (`total_tasks() == n³` for `n = a.n_blocks()`).
///
/// Each worker accumulates its `C[i,j]` contributions locally and flushes
/// them at shutdown; the master sums the per-worker contributions. Result
/// blocks therefore travel once per (worker, C-block) pair, matching the
/// paper's accounting where `C` traffic is deferred to the end of the
/// computation.
pub fn run_matmul<S: Scheduler>(
    mut scheduler: S,
    a: &BlockedMatrix,
    b: &BlockedMatrix,
    cfg: &ExecConfig,
) -> (BlockedMatrix, ExecReport) {
    let n = a.n_blocks();
    let l = a.l();
    assert_eq!(b.n_blocks(), n);
    assert_eq!(b.l(), l);
    let p = cfg.speeds.len();
    assert_eq!(
        scheduler.total_tasks(),
        n * n * n,
        "scheduler sized for a different problem"
    );

    let mut rng = rng_for(cfg.seed, 0xE8ED);
    let (to_master_tx, to_master_rx): (Sender<ToMaster>, Receiver<ToMaster>) = unbounded();
    let worker_channels: Vec<(Sender<ToWorker>, Receiver<ToWorker>)> =
        (0..p).map(|_| unbounded()).collect();

    let mut sent_a: Vec<FixedBitSet> = (0..p).map(|_| FixedBitSet::new(n * n)).collect();
    let mut sent_b: Vec<FixedBitSet> = (0..p).map(|_| FixedBitSet::new(n * n)).collect();

    let mut result = BlockedMatrix::zeros(n, l);
    let mut report = ExecReport {
        input_blocks_shipped: 0,
        result_blocks_returned: 0,
        tasks_per_worker: vec![0; p],
        jobs_per_worker: vec![0; p],
        tasks_lost_per_worker: vec![0; p],
    };

    // Workers whose injected fault has not yet fired or been cancelled.
    let mut fault_pending: Vec<bool> = (0..p).map(|w| cfg.fail_after(w).is_some()).collect();
    let mut pending_count = fault_pending.iter().filter(|&&b| b).count();
    assert!(
        pending_count < p,
        "at least one worker must survive the faults"
    );

    crossbeam::thread::scope(|scope| {
        for (w, (_, rx)) in worker_channels.iter().enumerate() {
            let rx = rx.clone();
            let tx = to_master_tx.clone();
            let fault_tx = to_master_tx.clone();
            let factor = cfg.work_factor(w);
            let fail_after = cfg.fail_after(w);
            scope.spawn(move |_| {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker_loop(w, n, l, factor, fail_after, rx, tx)
                })) {
                    Ok(()) => {}
                    Err(payload) if payload.is::<InjectedFault>() => {
                        let _ = fault_tx.send(ToMaster::Failed { worker: w });
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            });
        }
        drop(to_master_tx);

        // Every task id a worker currently holds unflushed results for.
        let mut assigned: Vec<Vec<u32>> = vec![Vec::new(); p];
        // Requests that cannot be answered yet: the pool is drained but a
        // pending fault may still return lost tasks to it.
        let mut parked: Vec<usize> = Vec::new();
        let mut live = p;

        while live > 0 {
            match to_master_rx.recv().expect("workers alive while live > 0") {
                ToMaster::Request { worker } => parked.push(worker),
                ToMaster::Results { worker, blocks } => {
                    report.result_blocks_returned += blocks.len() as u64;
                    for ((i, j), data) in blocks {
                        result.add_block(i as usize, j as usize, &data);
                    }
                    assigned[worker].clear();
                    live -= 1;
                }
                ToMaster::Failed { worker } => {
                    // The thread is gone and its locally accumulated C
                    // contributions with it: return everything it was
                    // assigned to the pool.
                    live -= 1;
                    debug_assert!(fault_pending[worker]);
                    fault_pending[worker] = false;
                    pending_count -= 1;
                    let lost = std::mem::take(&mut assigned[worker]);
                    report.tasks_per_worker[worker] -= lost.len() as u64;
                    report.tasks_lost_per_worker[worker] += lost.len() as u64;
                    scheduler.on_tasks_lost(&lost);
                }
            }

            loop {
                // Serve parked requests until none can make progress.
                loop {
                    let mut progress = false;
                    let mut idx = 0;
                    while idx < parked.len() {
                        let worker = parked[idx];
                        if scheduler.remaining() == 0 {
                            let own = fault_pending[worker] as usize;
                            if pending_count - own > 0 {
                                // Some *other* worker may still die and
                                // return tasks; keep this request parked.
                                idx += 1;
                                continue;
                            }
                            // This worker's own fault (if any) can never
                            // fire while it idles on an empty pool: cancel
                            // it and let the worker shut down below.
                            if fault_pending[worker] {
                                fault_pending[worker] = false;
                                pending_count -= 1;
                            }
                        }
                        let mut tasks = Vec::new();
                        let alloc = if scheduler.remaining() == 0 {
                            hetsched_sim::Allocation::DONE
                        } else {
                            scheduler.on_request(ProcId(worker as u32), &mut rng, &mut tasks)
                        };
                        if alloc.is_done() {
                            worker_channels[worker]
                                .0
                                .send(ToWorker::Shutdown)
                                .expect("worker waiting");
                            parked.remove(idx);
                            progress = true;
                            continue;
                        }
                        debug_assert_eq!(tasks.len(), alloc.tasks);
                        report.tasks_per_worker[worker] += tasks.len() as u64;
                        report.jobs_per_worker[worker] += 1;
                        assigned[worker].extend_from_slice(&tasks);

                        let mut blocks = Vec::new();
                        for &id in &tasks {
                            let (i, j, k) = decode(id, n);
                            let a_id = i * n + k;
                            let b_id = k * n + j;
                            if sent_a[worker].insert(a_id) {
                                blocks.push((BlockTag::A(a_id as u32), a.copy_block(i, k)));
                            }
                            if sent_b[worker].insert(b_id) {
                                blocks.push((BlockTag::B(b_id as u32), b.copy_block(k, j)));
                            }
                        }
                        report.input_blocks_shipped += blocks.len() as u64;
                        worker_channels[worker]
                            .0
                            .send(ToWorker::Job(Job { tasks, blocks }))
                            .expect("worker waiting");
                        parked.remove(idx);
                        progress = true;
                    }
                    if !progress {
                        break;
                    }
                }
                // Deadlock breaker: if every live worker is parked on an
                // empty pool, the remaining pending faults (all on parked,
                // hence idle, workers) can never fire. Cancel them and
                // re-serve so everyone shuts down.
                if parked.len() == live && scheduler.remaining() == 0 && pending_count > 0 {
                    for &w in &parked {
                        if fault_pending[w] {
                            fault_pending[w] = false;
                            pending_count -= 1;
                        }
                    }
                    continue;
                }
                break;
            }
        }
    })
    .expect("worker thread panicked");

    (result, report)
}

#[inline]
fn decode(id: u32, n: usize) -> (usize, usize, usize) {
    let id = id as usize;
    let k = id % n;
    let rest = id / n;
    (rest / n, rest % n, k)
}

fn worker_loop(
    worker: usize,
    n: usize,
    l: usize,
    work_factor: u32,
    fail_after: Option<u64>,
    rx: Receiver<ToWorker>,
    tx: Sender<ToMaster>,
) {
    let mut completed = 0u64;
    let mut store_a: HashMap<usize, Vec<f64>> = HashMap::new();
    let mut store_b: HashMap<usize, Vec<f64>> = HashMap::new();
    // Local C accumulators, keyed by (i, j).
    let mut acc: HashMap<(u32, u32), Vec<f64>> = HashMap::new();
    // Sleep owed by the speed emulation, flushed in ≥200 µs chunks to beat
    // the OS timer granularity (see outer_run.rs).
    let mut sleep_debt = std::time::Duration::ZERO;

    tx.send(ToMaster::Request { worker }).expect("master alive");
    loop {
        match rx.recv().expect("master alive") {
            ToWorker::Job(job) => {
                for (tag, data) in job.blocks {
                    match tag {
                        BlockTag::A(id) => {
                            store_a.insert(id as usize, data);
                        }
                        BlockTag::B(id) => {
                            store_b.insert(id as usize, data);
                        }
                    }
                }
                for id in job.tasks {
                    if Some(completed) == fail_after {
                        // Injected fault: die as if the thread was killed,
                        // taking the local C accumulators down with it.
                        std::panic::panic_any(InjectedFault);
                    }
                    let (i, j, k) = decode(id, n);
                    let ab = store_a.get(&(i * n + k)).expect("A block shipped");
                    let bb = store_b.get(&(k * n + j)).expect("B block shipped");
                    let c = acc
                        .entry((i as u32, j as u32))
                        .or_insert_with(|| vec![0.0; l * l]);
                    // Emulated heterogeneity: compute once for real, then
                    // sleep the extra (factor − 1) kernel durations (honest
                    // wall-clock ratios even with more workers than cores).
                    let t0 = std::time::Instant::now();
                    gemm_kernel(l, black_box(ab), black_box(bb), c);
                    if work_factor > 1 {
                        sleep_debt += t0.elapsed() * (work_factor - 1);
                        if sleep_debt >= std::time::Duration::from_micros(200) {
                            std::thread::sleep(sleep_debt);
                            sleep_debt = std::time::Duration::ZERO;
                        }
                    }
                    completed += 1;
                }
                tx.send(ToMaster::Request { worker }).expect("master alive");
            }
            ToWorker::Shutdown => {
                let mut blocks: Vec<((u32, u32), Vec<f64>)> = acc.drain().collect();
                // Deterministic flush order (HashMap iteration is not).
                blocks.sort_by_key(|(ij, _)| *ij);
                tx.send(ToMaster::Results { worker, blocks })
                    .expect("master alive");
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::reference_matmul;
    use hetsched_matmul::{DynamicMatrix, DynamicMatrix2Phases, RandomMatrix, SortedMatrix};

    fn check<S: Scheduler>(
        scheduler: S,
        n: usize,
        l: usize,
        cfg: &ExecConfig,
    ) -> (BlockedMatrix, ExecReport) {
        let a = BlockedMatrix::random(n, l, 31);
        let b = BlockedMatrix::random(n, l, 32);
        let (c, report) = run_matmul(scheduler, &a, &b, cfg);
        let reference = reference_matmul(&a, &b);
        // Contributions are summed in arrival order at the master, so allow
        // floating-point reassociation noise.
        let diff = c.max_abs_diff(&reference);
        assert!(diff < 1e-10, "numerical mismatch: {diff}");
        assert_eq!(report.total_tasks(), (n * n * n) as u64);
        (c, report)
    }

    #[test]
    fn dynamic_matrix_executes_correctly() {
        let cfg = ExecConfig::homogeneous(4, 1);
        let (_, report) = check(DynamicMatrix::new(6, 4), 6, 4, &cfg);
        // Every worker that computed anything returns ≥ 1 C block; at most
        // p·n² total.
        assert!(report.result_blocks_returned <= 4 * 36);
        assert!(report.result_blocks_returned >= 36);
    }

    #[test]
    fn random_matrix_executes_correctly() {
        let cfg = ExecConfig::homogeneous(3, 2);
        check(RandomMatrix::new(5, 3), 5, 3, &cfg);
    }

    #[test]
    fn sorted_matrix_executes_correctly() {
        let cfg = ExecConfig::homogeneous(2, 3);
        check(SortedMatrix::new(4, 2), 4, 2, &cfg);
    }

    #[test]
    fn two_phase_matrix_executes_correctly() {
        let cfg = ExecConfig::homogeneous(5, 4);
        check(DynamicMatrix2Phases::with_beta(6, 5, 2.5), 6, 3, &cfg);
    }

    #[test]
    fn single_worker_ships_every_input_block_once() {
        let cfg = ExecConfig::homogeneous(1, 5);
        let (_, report) = check(DynamicMatrix::new(5, 1), 5, 2, &cfg);
        // 2n² input blocks (A and B; C never travels to workers here).
        assert_eq!(report.input_blocks_shipped, 50);
        assert_eq!(report.result_blocks_returned, 25);
    }

    #[test]
    fn heterogeneous_speeds_skew_task_shares() {
        // Large enough blocks that the gemm kernel dominates messaging.
        let cfg = ExecConfig {
            speeds: vec![1.0, 6.0],
            seed: 9,
            faults: Vec::new(),
        };
        let (_, report) = check(RandomMatrix::new(6, 2), 6, 24, &cfg);
        let slow = report.tasks_per_worker[0] as f64;
        let fast = report.tasks_per_worker[1] as f64;
        assert!(fast > 1.5 * slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn killed_worker_is_recovered_exactly_once() {
        // Worker 0 dies after 6 completed tasks; its local C accumulators
        // (partial sums!) are lost with it and the master re-queues every
        // task it ever held, so no contribution is double-counted.
        let cfg = ExecConfig::homogeneous(3, 12).fail_after_tasks(0, 6);
        let (_, report) = check(RandomMatrix::new(5, 3), 5, 3, &cfg);
        assert!(report.total_tasks_lost() > 0, "fault never fired");
        assert!(report.tasks_lost_per_worker[0] >= 6);
    }

    #[test]
    fn killed_worker_recovery_works_for_data_aware_strategies() {
        let cfg = ExecConfig::homogeneous(4, 13).fail_after_tasks(3, 10);
        let (_, report) = check(DynamicMatrix::new(6, 4), 6, 2, &cfg);
        assert!(report.total_tasks_lost() > 0, "fault never fired");
    }
}
