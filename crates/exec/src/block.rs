//! Block storage and the two block kernels.

/// A dense `N × N` matrix (`N = n_blocks · l`) stored row-major, with
/// block-granular access. Used for the inputs and the assembled result.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockedMatrix {
    n_blocks: usize,
    l: usize,
    data: Vec<f64>,
}

impl BlockedMatrix {
    /// Zero matrix of `n_blocks × n_blocks` blocks of size `l × l`.
    pub fn zeros(n_blocks: usize, l: usize) -> Self {
        BlockedMatrix {
            n_blocks,
            l,
            data: vec![0.0; n_blocks * n_blocks * l * l],
        }
    }

    /// Builds from a full row-major buffer.
    pub fn from_data(n_blocks: usize, l: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n_blocks * n_blocks * l * l);
        BlockedMatrix { n_blocks, l, data }
    }

    /// Deterministic pseudo-random test matrix (values in `[-1, 1]`).
    pub fn random(n_blocks: usize, l: usize, seed: u64) -> Self {
        use rand::Rng;
        let mut rng = hetsched_util::rng::rng_for(seed, 0xDA7A);
        let data = (0..n_blocks * n_blocks * l * l)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        BlockedMatrix { n_blocks, l, data }
    }

    /// Blocks per dimension.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Block edge size.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Element dimension (`n_blocks · l`).
    pub fn dim(&self) -> usize {
        self.n_blocks * self.l
    }

    /// Full row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Element accessor.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.dim() + c]
    }

    /// Copies block `(bi, bj)` out as a row-major `l × l` buffer.
    pub fn copy_block(&self, bi: usize, bj: usize) -> Vec<f64> {
        let l = self.l;
        let dim = self.dim();
        let mut out = Vec::with_capacity(l * l);
        for r in 0..l {
            let start = (bi * l + r) * dim + bj * l;
            out.extend_from_slice(&self.data[start..start + l]);
        }
        out
    }

    /// Adds `contrib` (row-major `l × l`) into block `(bi, bj)`.
    pub fn add_block(&mut self, bi: usize, bj: usize, contrib: &[f64]) {
        let l = self.l;
        let dim = self.dim();
        assert_eq!(contrib.len(), l * l);
        for r in 0..l {
            let start = (bi * l + r) * dim + bj * l;
            for c in 0..l {
                self.data[start + c] += contrib[r * l + c];
            }
        }
    }

    /// Max absolute element-wise difference to another matrix.
    pub fn max_abs_diff(&self, other: &BlockedMatrix) -> f64 {
        assert_eq!(self.data.len(), other.data.len());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// A blocked vector: `n_blocks` blocks of `l` elements.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockedVector {
    n_blocks: usize,
    l: usize,
    data: Vec<f64>,
}

impl BlockedVector {
    /// Deterministic pseudo-random test vector.
    pub fn random(n_blocks: usize, l: usize, seed: u64) -> Self {
        use rand::Rng;
        let mut rng = hetsched_util::rng::rng_for(seed, 0xDA7B);
        let data = (0..n_blocks * l)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        BlockedVector { n_blocks, l, data }
    }

    /// Builds from a full buffer.
    pub fn from_data(n_blocks: usize, l: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n_blocks * l);
        BlockedVector { n_blocks, l, data }
    }

    /// Blocks in the vector.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Block size.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Full data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Copies block `i` out.
    pub fn copy_block(&self, i: usize) -> Vec<f64> {
        self.data[i * self.l..(i + 1) * self.l].to_vec()
    }
}

/// Block kernel: `c = a · bᵗ` for `l`-vectors `a`, `b` (row-major `l × l`
/// output).
pub fn outer_kernel(a: &[f64], b: &[f64], c: &mut [f64]) {
    let l = a.len();
    debug_assert_eq!(b.len(), l);
    debug_assert_eq!(c.len(), l * l);
    for (r, &av) in a.iter().enumerate() {
        let row = &mut c[r * l..(r + 1) * l];
        for (cell, &bv) in row.iter_mut().zip(b) {
            *cell = av * bv;
        }
    }
}

/// Block kernel: `c += a · b` for row-major `l × l` blocks.
pub fn gemm_kernel(l: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    debug_assert_eq!(a.len(), l * l);
    debug_assert_eq!(b.len(), l * l);
    debug_assert_eq!(c.len(), l * l);
    // ikj loop order: stream over b and c rows for locality.
    for i in 0..l {
        for k in 0..l {
            let aik = a[i * l + k];
            let brow = &b[k * l..(k + 1) * l];
            let crow = &mut c[i * l..(i + 1) * l];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
}

/// Sequential reference: full outer product of blocked vectors.
pub fn reference_outer(a: &BlockedVector, b: &BlockedVector) -> BlockedMatrix {
    assert_eq!(a.n_blocks(), b.n_blocks());
    assert_eq!(a.l(), b.l());
    let dim = a.n_blocks() * a.l();
    let mut m = BlockedMatrix::zeros(a.n_blocks(), a.l());
    for r in 0..dim {
        for c in 0..dim {
            m.data[r * dim + c] = a.data[r] * b.data[c];
        }
    }
    m
}

/// Sequential reference: full matrix product `A · B`.
pub fn reference_matmul(a: &BlockedMatrix, b: &BlockedMatrix) -> BlockedMatrix {
    assert_eq!(a.dim(), b.dim());
    assert_eq!(a.l(), b.l());
    let dim = a.dim();
    let mut c = BlockedMatrix::zeros(a.n_blocks(), a.l());
    for i in 0..dim {
        for k in 0..dim {
            let aik = a.data[i * dim + k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..dim {
                c.data[i * dim + j] += aik * b.data[k * dim + j];
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_and_add_block_round_trip() {
        let mut m = BlockedMatrix::zeros(3, 2);
        let blk = vec![1.0, 2.0, 3.0, 4.0];
        m.add_block(1, 2, &blk);
        assert_eq!(m.copy_block(1, 2), blk);
        assert_eq!(m.copy_block(0, 0), vec![0.0; 4]);
        // Element view: block (1,2) starts at row 2, col 4.
        assert_eq!(m.at(2, 4), 1.0);
        assert_eq!(m.at(3, 5), 4.0);
        // add accumulates.
        m.add_block(1, 2, &blk);
        assert_eq!(m.copy_block(1, 2), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn outer_kernel_matches_definition() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let mut c = vec![0.0; 9];
        outer_kernel(&a, &b, &mut c);
        assert_eq!(c, vec![4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 12.0, 15.0, 18.0]);
    }

    #[test]
    fn gemm_kernel_matches_naive() {
        let l = 3;
        let a: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..9).map(|i| (2 * i) as f64).collect();
        let mut c = vec![1.0; 9]; // non-zero start: must accumulate
        gemm_kernel(l, &a, &b, &mut c);
        let mut expect = vec![1.0; 9];
        for i in 0..l {
            for j in 0..l {
                for k in 0..l {
                    expect[i * l + j] += a[i * l + k] * b[k * l + j];
                }
            }
        }
        assert_eq!(c, expect);
    }

    #[test]
    fn reference_outer_blockwise_consistency() {
        let a = BlockedVector::random(3, 2, 1);
        let b = BlockedVector::random(3, 2, 2);
        let m = reference_outer(&a, &b);
        // Block (i,j) of the result equals the block kernel on blocks i, j.
        for i in 0..3 {
            for j in 0..3 {
                let mut blk = vec![0.0; 4];
                outer_kernel(&a.copy_block(i), &b.copy_block(j), &mut blk);
                assert_eq!(m.copy_block(i, j), blk);
            }
        }
    }

    #[test]
    fn reference_matmul_blockwise_consistency() {
        let n = 3;
        let l = 2;
        let a = BlockedMatrix::random(n, l, 3);
        let b = BlockedMatrix::random(n, l, 4);
        let c = reference_matmul(&a, &b);
        // Block (i,j) equals Σ_k gemm(A[i,k], B[k,j]).
        for i in 0..n {
            for j in 0..n {
                let mut blk = vec![0.0; l * l];
                for k in 0..n {
                    gemm_kernel(l, &a.copy_block(i, k), &b.copy_block(k, j), &mut blk);
                }
                let got = c.copy_block(i, j);
                for (x, y) in blk.iter().zip(&got) {
                    assert!((x - y).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        assert_eq!(
            BlockedMatrix::random(2, 3, 9).data(),
            BlockedMatrix::random(2, 3, 9).data()
        );
        assert_ne!(
            BlockedMatrix::random(2, 3, 9).data(),
            BlockedMatrix::random(2, 3, 10).data()
        );
    }

    #[test]
    fn max_abs_diff() {
        let a = BlockedMatrix::random(2, 2, 0);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.data[5] += 0.25;
        assert!((a.max_abs_diff(&b) - 0.25).abs() < 1e-15);
    }
}
