//! Master ↔ worker message types and the execution report.

/// Identifies one shipped data block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockTag {
    /// Block `i` of vector `a`, or block `(i·n + k)` of matrix `A`.
    A(u32),
    /// Block `j` of vector `b`, or block `(k·n + j)` of matrix `B`.
    B(u32),
}

/// A batch of work for one worker.
#[derive(Clone, Debug)]
pub struct Job {
    /// Linear task ids (decoded kernel-specifically by the worker).
    pub tasks: Vec<u32>,
    /// Input blocks the worker does not have yet.
    pub blocks: Vec<(BlockTag, Vec<f64>)>,
}

/// Master → worker.
#[derive(Clone, Debug)]
pub enum ToWorker {
    /// Compute this batch, then request again.
    Job(Job),
    /// Flush results and exit.
    Shutdown,
}

/// Worker → master.
#[derive(Clone, Debug)]
pub enum ToMaster {
    /// Worker is idle and wants work.
    Request { worker: usize },
    /// Result contribution blocks `((i, j), l×l data)`, sent on shutdown.
    Results {
        worker: usize,
        blocks: Vec<((u32, u32), Vec<f64>)>,
    },
    /// The worker's thread died with an injected fault. Everything it was
    /// ever assigned is lost (results only travel at shutdown) and must be
    /// re-allocated to the survivors.
    Failed { worker: usize },
}

/// Panic payload a worker thread unwinds with when its injected fault
/// fires; the thread wrapper turns it into [`ToMaster::Failed`] instead of
/// propagating it (genuine panics still propagate).
pub(crate) struct InjectedFault;

/// An injected fault for a real execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecFault {
    /// Kill `worker`'s thread (by unwinding it) once it has completed
    /// `after` tasks. The fault is cancelled if the worker idles out with
    /// fewer completions — it can then never fire.
    FailAfterTasks { worker: usize, after: u64 },
}

/// Execution parameters.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Per-worker nominal speeds; worker `w` repeats each block kernel
    /// `round(max_speed / speeds[w])` times to emulate heterogeneity.
    pub speeds: Vec<f64>,
    /// Master seed for the scheduler's RNG.
    pub seed: u64,
    /// Injected worker faults (empty for a fault-free run).
    pub faults: Vec<ExecFault>,
}

impl ExecConfig {
    /// Homogeneous configuration.
    pub fn homogeneous(p: usize, seed: u64) -> Self {
        ExecConfig {
            speeds: vec![1.0; p],
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds an injected fault (builder style).
    pub fn fail_after_tasks(mut self, worker: usize, after: u64) -> Self {
        self.faults
            .push(ExecFault::FailAfterTasks { worker, after });
        self
    }

    /// Task-completion threshold at which `worker` dies, if any.
    pub fn fail_after(&self, worker: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match *f {
            ExecFault::FailAfterTasks { worker: w, after } if w == worker => Some(after),
            _ => None,
        })
    }

    /// Work factor of worker `w` (≥ 1).
    pub fn work_factor(&self, w: usize) -> u32 {
        let max = self.speeds.iter().cloned().fold(f64::MIN, f64::max);
        (max / self.speeds[w]).round().max(1.0) as u32
    }
}

/// What a real execution measured.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Input blocks actually shipped master → workers.
    pub input_blocks_shipped: u64,
    /// Result (`C`) blocks shipped workers → master.
    pub result_blocks_returned: u64,
    /// Tasks executed per worker. A failed worker's lost assignments are
    /// subtracted back out, so the sum still equals the task count.
    pub tasks_per_worker: Vec<u64>,
    /// Jobs (scheduler requests with work) per worker.
    pub jobs_per_worker: Vec<u64>,
    /// Tasks lost per worker to injected faults (re-allocated elsewhere).
    pub tasks_lost_per_worker: Vec<u64>,
}

impl ExecReport {
    /// Total tasks executed.
    pub fn total_tasks(&self) -> u64 {
        self.tasks_per_worker.iter().sum()
    }

    /// Total tasks lost to injected faults.
    pub fn total_tasks_lost(&self) -> u64 {
        self.tasks_lost_per_worker.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_factor_scales_inversely() {
        let cfg = ExecConfig {
            speeds: vec![1.0, 2.0, 4.0],
            seed: 0,
            faults: Vec::new(),
        };
        assert_eq!(cfg.work_factor(0), 4);
        assert_eq!(cfg.work_factor(1), 2);
        assert_eq!(cfg.work_factor(2), 1);
    }

    #[test]
    fn work_factor_never_below_one() {
        let cfg = ExecConfig::homogeneous(3, 0);
        for w in 0..3 {
            assert_eq!(cfg.work_factor(w), 1);
        }
    }
}
