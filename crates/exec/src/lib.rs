//! A real threaded mini-runtime driving the paper's schedulers.
//!
//! The paper evaluates its strategies purely in simulation. This crate goes
//! one step further — in the spirit of the runtime systems the paper models
//! (StarPU, PaRSEC, StarSs) — and *executes* the kernels: a master thread
//! runs any [`Scheduler`](hetsched_sim::Scheduler) verbatim, ships actual
//! `f64` blocks over crossbeam channels to demand-driven worker threads,
//! and assembles the numerical result, which tests verify against a
//! sequential reference.
//!
//! Heterogeneity on a homogeneous test machine is emulated by a per-worker
//! *work factor*: a worker of speed `s` computes each block kernel once for
//! real and then sleeps `(round(max_speed/s) − 1)` additional kernel
//! durations, so slow workers request less often exactly as in the
//! simulation — including on machines with fewer cores than workers, where
//! re-running the kernel would merely contend for CPU instead of slowing
//! the worker's wall-clock.
//!
//! What this adds over the simulator:
//!
//! * the schedulers' task ids flow through a real allocation protocol
//!   (exactly-once execution is checked by summing real numbers, not
//!   counters);
//! * communication is real data motion — the report counts the blocks
//!   actually shipped, which tests compare against the simulator's
//!   accounting;
//! * scheduling decisions interleave with genuinely concurrent workers.
//!
//! The entry points are [`run_outer`] and [`run_matmul`].

pub mod block;
pub mod matmul_run;
pub mod outer_run;
pub mod protocol;

pub use block::BlockedMatrix;
pub use matmul_run::run_matmul;
pub use outer_run::run_outer;
pub use protocol::{ExecConfig, ExecFault, ExecReport};
