//! `DynamicOuter`: the data-aware strategy (Algorithm 1).

use crate::ownership::WorkerData;
use crate::state::OuterState;
use crate::strategies::dynamic_step;
use hetsched_platform::ProcId;
use hetsched_sim::{Allocation, Scheduler};
use rand::rngs::StdRng;

/// Per request, ships one new random `a` block and one new random `b` block
/// to the worker and allocates every still-unprocessed task of the new
/// row/column of the worker's known sub-grid.
///
/// Efficient in steady state (2 blocks buy `Θ(x·n)` tasks) but pathological
/// in the end game: when few tasks remain, extensions keep enabling nothing
/// and the worker buys blocks without work — the motivation for
/// [`DynamicOuter2Phases`](crate::strategies::DynamicOuter2Phases).
#[derive(Clone, Debug)]
pub struct DynamicOuter {
    state: OuterState,
    workers: Vec<WorkerData>,
}

impl DynamicOuter {
    /// `n` blocks per vector, `p` workers.
    pub fn new(n: usize, p: usize) -> Self {
        DynamicOuter {
            state: OuterState::new(n),
            workers: WorkerData::fleet(n, p),
        }
    }

    /// Rectangular shard variant (`rows × cols` task grid) for the
    /// hierarchical tree topology.
    pub fn rect(rows: usize, cols: usize, p: usize) -> Self {
        DynamicOuter {
            state: OuterState::rect(rows, cols),
            workers: WorkerData::fleet_rect(rows, cols, p),
        }
    }

    /// Read-only view of the task state (for audits).
    pub fn state(&self) -> &OuterState {
        &self.state
    }

    /// Read-only view of a worker's ownership (for audits).
    pub fn worker(&self, k: ProcId) -> &WorkerData {
        &self.workers[k.idx()]
    }
}

impl Scheduler for DynamicOuter {
    fn on_request(&mut self, k: ProcId, rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
        dynamic_step(&mut self.state, &mut self.workers[k.idx()], rng, out)
    }

    fn on_tasks_lost(&mut self, ids: &[u32]) {
        // Reinserted tasks become orphans: `dynamic_step` hands each one to
        // the first requester that already owns its row and column (zero
        // new blocks), or sweeps them up once a worker reaches full
        // knowledge.
        for &id in ids {
            self.state.reinsert(id);
        }
    }

    fn useful_fraction(&self, k: ProcId) -> Option<f64> {
        Some(self.workers[k.idx()].knowledge_fraction())
    }

    fn remaining(&self) -> usize {
        self.state.remaining()
    }

    fn total_tasks(&self) -> usize {
        self.state.total()
    }

    fn name(&self) -> &'static str {
        "DynamicOuter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_platform::{outer_lower_bound, Platform, SpeedDistribution, SpeedModel};
    use hetsched_util::rng::rng_for;

    #[test]
    fn completes_all_tasks() {
        let pf = Platform::from_speeds(vec![15.0, 85.0]);
        let mut rng = rng_for(0, 0);
        let (report, sched) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, DynamicOuter::new(30, 2), &mut rng);
        assert_eq!(sched.remaining(), 0);
        assert_eq!(report.ledger.total_tasks(), 900);
    }

    #[test]
    fn beats_random_on_communication() {
        let mut rng = rng_for(1, 0);
        let pf = Platform::sample(20, &SpeedDistribution::paper_default(), &mut rng);
        let lb = outer_lower_bound(100, &pf);

        let (dyn_report, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicOuter::new(100, 20),
            &mut rng_for(1, 1),
        );
        let (rnd_report, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            crate::strategies::RandomOuter::new(100, 20),
            &mut rng_for(1, 1),
        );
        let d = dyn_report.normalized(lb);
        let r = rnd_report.normalized(lb);
        assert!(d < r, "dynamic {d} should beat random {r}");
        // Paper Fig. 2 territory: dynamic around 2.5–3, random around 4.5.
        assert!(d < 3.5, "dynamic too costly: {d}");
        assert!(r > 3.5, "random unexpectedly cheap: {r}");
    }

    #[test]
    fn comm_at_least_lower_bound() {
        let mut rng = rng_for(2, 0);
        let pf = Platform::sample(10, &SpeedDistribution::paper_default(), &mut rng);
        let lb = outer_lower_bound(50, &pf);
        let (report, _) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, DynamicOuter::new(50, 10), &mut rng);
        assert!(report.total_blocks as f64 >= lb * 0.999);
    }

    #[test]
    fn worker_ownership_symmetric_in_pure_dynamic() {
        // Pure DynamicOuter always extends a and b together, so |I| and |J|
        // can differ by at most ... they stay equal unless the vector ran
        // out; with n much larger than what a worker learns they are equal.
        let pf = Platform::homogeneous(8);
        let mut rng = rng_for(3, 0);
        let (_, sched) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, DynamicOuter::new(60, 8), &mut rng);
        for k in pf.procs() {
            let w = sched.worker(k);
            assert_eq!(w.a.count(), w.b.count(), "worker {k}");
            assert!(w.a.count() > 0);
        }
    }

    #[test]
    fn single_worker_is_optimal() {
        // Alone, dynamic ships each block exactly once: 2n blocks = LB.
        let pf = Platform::from_speeds(vec![3.0]);
        let mut rng = rng_for(4, 0);
        let (report, _) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, DynamicOuter::new(40, 1), &mut rng);
        assert_eq!(report.total_blocks, 80);
    }
}
