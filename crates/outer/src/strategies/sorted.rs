//! `SortedOuter`: lexicographic task order.

use crate::ownership::WorkerData;
use crate::state::OuterState;
use hetsched_platform::ProcId;
use hetsched_sim::{Allocation, Scheduler};
use rand::rngs::StdRng;

/// Allocates tasks in lexicographic `(i, j)` order and ships the missing
/// inputs. Equivalent to `RandomOuter` in its obliviousness to data
/// locality, but with a deterministic issue order: a worker does get row
/// reuse for consecutive tasks of the same row, which is why it tracks
/// slightly below `RandomOuter` in the paper's figures.
#[derive(Clone, Debug)]
pub struct SortedOuter {
    state: OuterState,
    workers: Vec<WorkerData>,
    cursor: u32,
}

impl SortedOuter {
    /// `n` blocks per vector, `p` workers.
    pub fn new(n: usize, p: usize) -> Self {
        SortedOuter {
            state: OuterState::new(n),
            workers: WorkerData::fleet(n, p),
            cursor: 0,
        }
    }

    /// Rectangular shard variant (`rows × cols` task grid) for the
    /// hierarchical tree topology.
    pub fn rect(rows: usize, cols: usize, p: usize) -> Self {
        SortedOuter {
            state: OuterState::rect(rows, cols),
            workers: WorkerData::fleet_rect(rows, cols, p),
            cursor: 0,
        }
    }

    /// Read-only view of the task state (for audits).
    pub fn state(&self) -> &OuterState {
        &self.state
    }
}

impl Scheduler for SortedOuter {
    fn on_request(&mut self, k: ProcId, _rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
        let total = self.state.total() as u32;
        // Skip tasks already processed (possible if the cursor was advanced
        // for another worker in a mixed/two-phase use of this scheduler).
        while self.cursor < total {
            let (i, j) = self.state.coords(self.cursor);
            if !self.state.is_processed(i, j) {
                break;
            }
            self.cursor += 1;
        }
        if self.cursor >= total {
            return Allocation::DONE;
        }
        let (i, j) = self.state.coords(self.cursor);
        self.cursor += 1;
        let fresh = self.state.mark_processed(i, j);
        debug_assert!(fresh);
        out.push(self.state.task_id(i, j));
        let worker = &mut self.workers[k.idx()];
        let mut blocks = 0;
        if worker.a.acquire(i) {
            blocks += 1;
        }
        if worker.b.acquire(j) {
            blocks += 1;
        }
        Allocation { tasks: 1, blocks }
    }

    fn on_tasks_lost(&mut self, ids: &[u32]) {
        // Rewind the cursor to the earliest reinserted task; the skip loop
        // in `on_request` re-walks the (processed) gap and re-allocates the
        // lost tasks in lexicographic order.
        for &id in ids {
            if self.state.reinsert(id) {
                self.cursor = self.cursor.min(id);
            }
        }
    }

    fn useful_fraction(&self, k: ProcId) -> Option<f64> {
        Some(self.workers[k.idx()].knowledge_fraction())
    }

    fn remaining(&self) -> usize {
        self.state.remaining()
    }

    fn total_tasks(&self) -> usize {
        self.state.total()
    }

    fn name(&self) -> &'static str {
        "SortedOuter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_platform::{Platform, SpeedModel};
    use hetsched_util::rng::rng_for;

    #[test]
    fn allocates_in_lexicographic_order() {
        let mut s = SortedOuter::new(3, 1);
        let mut rng = rng_for(0, 0);
        let mut order = Vec::new();
        let mut out = Vec::new();
        while s.remaining() > 0 {
            let before = s.cursor;
            out.clear();
            let a = s.on_request(ProcId(0), &mut rng, &mut out);
            assert_eq!(a.tasks, 1);
            assert_eq!(out.as_slice(), &[before]);
            order.push(before);
        }
        assert_eq!(order, (0..9).collect::<Vec<u32>>());
    }

    #[test]
    fn single_worker_comm_is_2n() {
        // One worker in lexicographic order: ships each a block once per
        // row (n rows) and every b block during the first row: 2n total
        // unique blocks.
        let n = 12;
        let pf = Platform::from_speeds(vec![5.0]);
        let mut rng = rng_for(1, 0);
        let (report, _) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, SortedOuter::new(n, 1), &mut rng);
        assert_eq!(report.total_blocks, 2 * n as u64);
    }

    #[test]
    fn completes_under_engine_heterogeneous() {
        let pf = Platform::from_speeds(vec![10.0, 100.0]);
        let mut rng = rng_for(2, 0);
        let (report, sched) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, SortedOuter::new(25, 2), &mut rng);
        assert_eq!(sched.remaining(), 0);
        assert_eq!(report.ledger.total_tasks(), 625);
        // The fast worker gets the lion's share.
        assert!(report.ledger.tasks(ProcId(1)) > report.ledger.tasks(ProcId(0)));
    }

    #[test]
    fn row_reuse_bounds_per_task_comm() {
        // Lexicographic order revisits the same row n times consecutively:
        // a-block comm is at most p·n overall (each worker learns a row's
        // block at most once).
        let n = 10;
        let p = 3;
        let pf = Platform::homogeneous(p);
        let mut rng = rng_for(3, 0);
        let (report, _) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, SortedOuter::new(n, p), &mut rng);
        assert!(report.total_blocks <= 2 * (n * n) as u64);
        assert!(report.total_blocks >= 2 * n as u64);
    }
}
