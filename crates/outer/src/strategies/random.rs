//! `RandomOuter`: the locality-oblivious baseline.

use crate::ownership::WorkerData;
use crate::state::OuterState;
use crate::strategies::random_step;
use hetsched_platform::ProcId;
use hetsched_sim::{Allocation, Scheduler};
use rand::rngs::StdRng;

/// Allocates a uniformly random unprocessed task per request and ships the
/// missing inputs — the MapReduce-style baseline the paper argues against.
#[derive(Clone, Debug)]
pub struct RandomOuter {
    state: OuterState,
    workers: Vec<WorkerData>,
}

impl RandomOuter {
    /// `n` blocks per vector, `p` workers.
    pub fn new(n: usize, p: usize) -> Self {
        RandomOuter {
            state: OuterState::new(n),
            workers: WorkerData::fleet(n, p),
        }
    }

    /// Rectangular shard variant (`rows × cols` task grid) for the
    /// hierarchical tree topology.
    pub fn rect(rows: usize, cols: usize, p: usize) -> Self {
        RandomOuter {
            state: OuterState::rect(rows, cols),
            workers: WorkerData::fleet_rect(rows, cols, p),
        }
    }

    /// Read-only view of the task state (for audits).
    pub fn state(&self) -> &OuterState {
        &self.state
    }

    /// Read-only view of a worker's ownership (for audits).
    pub fn worker(&self, k: ProcId) -> &WorkerData {
        &self.workers[k.idx()]
    }
}

impl Scheduler for RandomOuter {
    fn on_request(&mut self, k: ProcId, rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
        random_step(&mut self.state, &mut self.workers[k.idx()], rng, out)
    }

    fn on_tasks_lost(&mut self, ids: &[u32]) {
        // Back into the uniform pool; a future random draw re-allocates
        // them, shipping only the inputs the new owner is missing.
        for &id in ids {
            self.state.reinsert(id);
        }
    }

    fn useful_fraction(&self, k: ProcId) -> Option<f64> {
        Some(self.workers[k.idx()].knowledge_fraction())
    }

    fn remaining(&self) -> usize {
        self.state.remaining()
    }

    fn total_tasks(&self) -> usize {
        self.state.total()
    }

    fn name(&self) -> &'static str {
        "RandomOuter"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_platform::{Platform, SpeedModel};
    use hetsched_util::rng::rng_for;

    #[test]
    fn completes_all_tasks_under_engine() {
        let pf = Platform::from_speeds(vec![10.0, 30.0, 60.0]);
        let mut rng = rng_for(0, 0);
        let (report, sched) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, RandomOuter::new(20, 3), &mut rng);
        assert_eq!(sched.remaining(), 0);
        assert_eq!(report.ledger.total_tasks(), 400);
    }

    #[test]
    fn communication_far_above_lower_bound() {
        // Random allocation replicates massively: with p = 16 workers and
        // n = 30, expect much more than the lower bound.
        let pf = Platform::homogeneous(16);
        let mut rng = rng_for(1, 0);
        let (report, _) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, RandomOuter::new(30, 16), &mut rng);
        let lb = hetsched_platform::outer_lower_bound(30, &pf);
        assert!(
            report.normalized(lb) > 2.0,
            "random should be far from the bound, got {}",
            report.normalized(lb)
        );
    }

    #[test]
    fn comm_never_exceeds_two_blocks_per_task() {
        let pf = Platform::homogeneous(4);
        let mut rng = rng_for(2, 0);
        let (report, _) =
            hetsched_sim::run(&pf, SpeedModel::Fixed, RandomOuter::new(15, 4), &mut rng);
        assert!(report.total_blocks <= 2 * 225);
    }

    #[test]
    fn name() {
        assert_eq!(RandomOuter::new(2, 1).name(), "RandomOuter");
    }
}
