//! `DynamicOuter2Phases`: data-aware opening, random end game (Algorithm 2).

use crate::ownership::WorkerData;
use crate::state::OuterState;
use crate::strategies::{dynamic_step, random_step};
use hetsched_platform::ProcId;
use hetsched_sim::{Allocation, Scheduler};
use rand::rngs::StdRng;

/// Runs [`DynamicOuter`](crate::strategies::DynamicOuter) while more than
/// `threshold` tasks remain, then switches every worker to the
/// [`RandomOuter`](crate::strategies::RandomOuter) behaviour.
///
/// The paper sets `threshold = e^{−β}·n²` with `β` minimizing the analytic
/// communication ratio (Theorem 6); [`with_beta`](Self::with_beta) wires
/// that in directly, and `hetsched-analysis` computes the optimal `β`.
#[derive(Clone, Debug)]
pub struct DynamicOuter2Phases {
    state: OuterState,
    workers: Vec<WorkerData>,
    threshold: usize,
    // Per-phase accounting, used to validate Lemma 4 / Lemma 5 separately.
    phase1_blocks: u64,
    phase2_blocks: u64,
    phase1_tasks: usize,
    phase2_tasks: usize,
}

impl DynamicOuter2Phases {
    /// `n` blocks per vector, `p` workers; switch to the random phase when
    /// at most `threshold` tasks remain.
    pub fn new(n: usize, p: usize, threshold: usize) -> Self {
        DynamicOuter2Phases {
            state: OuterState::new(n),
            workers: WorkerData::fleet(n, p),
            threshold,
            phase1_blocks: 0,
            phase2_blocks: 0,
            phase1_tasks: 0,
            phase2_tasks: 0,
        }
    }

    /// Paper parameterization: switch when `e^{−β}·n²` tasks remain.
    /// Rounds to the nearest integer, like
    /// [`with_phase1_fraction`](Self::with_phase1_fraction), so that
    /// `β = 0` degenerates exactly to the pure random strategy.
    pub fn with_beta(n: usize, p: usize, beta: f64) -> Self {
        assert!(beta >= 0.0, "β must be non-negative");
        let threshold = ((-beta).exp() * (n * n) as f64).round() as usize;
        Self::new(n, p, threshold)
    }

    /// Fig. 2 parameterization: process `fraction ∈ [0, 1]` of the tasks in
    /// phase 1 (i.e. switch when `1 − fraction` of the tasks remain).
    pub fn with_phase1_fraction(n: usize, p: usize, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        let threshold = ((1.0 - fraction) * (n * n) as f64).round() as usize;
        Self::new(n, p, threshold)
    }

    /// Rectangular shard variant (`rows × cols` task grid) for the
    /// hierarchical tree topology; switch when at most `threshold` tasks
    /// remain.
    pub fn rect(rows: usize, cols: usize, p: usize, threshold: usize) -> Self {
        DynamicOuter2Phases {
            state: OuterState::rect(rows, cols),
            workers: WorkerData::fleet_rect(rows, cols, p),
            threshold,
            phase1_blocks: 0,
            phase2_blocks: 0,
            phase1_tasks: 0,
            phase2_tasks: 0,
        }
    }

    /// [`with_beta`](Self::with_beta) over a rectangular shard: switch when
    /// `e^{−β}` of the shard's own `rows·cols` tasks remain.
    pub fn rect_with_beta(rows: usize, cols: usize, p: usize, beta: f64) -> Self {
        assert!(beta >= 0.0, "β must be non-negative");
        let threshold = ((-beta).exp() * (rows * cols) as f64).round() as usize;
        Self::rect(rows, cols, p, threshold)
    }

    /// [`with_phase1_fraction`](Self::with_phase1_fraction) over a
    /// rectangular shard.
    pub fn rect_with_phase1_fraction(rows: usize, cols: usize, p: usize, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        let threshold = ((1.0 - fraction) * (rows * cols) as f64).round() as usize;
        Self::rect(rows, cols, p, threshold)
    }

    /// The switch-over threshold in remaining tasks.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// True once the end game (random phase) has begun.
    pub fn in_phase2(&self) -> bool {
        self.state.remaining() <= self.threshold
    }

    /// Blocks shipped during phase 1 (Lemma 4's `V_Phase1`).
    pub fn phase1_blocks(&self) -> u64 {
        self.phase1_blocks
    }

    /// Blocks shipped during phase 2 (Lemma 5's `V_Phase2`).
    pub fn phase2_blocks(&self) -> u64 {
        self.phase2_blocks
    }

    /// Tasks allocated during phase 1.
    pub fn phase1_tasks(&self) -> usize {
        self.phase1_tasks
    }

    /// Tasks allocated during phase 2.
    pub fn phase2_tasks(&self) -> usize {
        self.phase2_tasks
    }

    /// Read-only view of the task state (for audits).
    pub fn state(&self) -> &OuterState {
        &self.state
    }
}

impl Scheduler for DynamicOuter2Phases {
    fn on_request(&mut self, k: ProcId, rng: &mut StdRng, out: &mut Vec<u32>) -> Allocation {
        let worker = &mut self.workers[k.idx()];
        if self.state.remaining() > self.threshold {
            let a = dynamic_step(&mut self.state, worker, rng, out);
            self.phase1_blocks += a.blocks;
            self.phase1_tasks += a.tasks;
            a
        } else {
            let a = random_step(&mut self.state, worker, rng, out);
            self.phase2_blocks += a.blocks;
            self.phase2_tasks += a.tasks;
            a
        }
    }

    fn on_tasks_lost(&mut self, ids: &[u32]) {
        // Reinsertion can push `remaining` back above the threshold, in
        // which case the scheduler legitimately drops back to phase 1; the
        // phase counters count (re-)allocations, so under failures their
        // sum exceeds `total_tasks` by the number of lost tasks.
        for &id in ids {
            self.state.reinsert(id);
        }
    }

    fn phase(&self) -> Option<u8> {
        Some(if self.in_phase2() { 2 } else { 1 })
    }

    fn useful_fraction(&self, k: ProcId) -> Option<f64> {
        Some(self.workers[k.idx()].knowledge_fraction())
    }

    fn remaining(&self) -> usize {
        self.state.remaining()
    }

    fn total_tasks(&self) -> usize {
        self.state.total()
    }

    fn name(&self) -> &'static str {
        "DynamicOuter2Phases"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{DynamicOuter, RandomOuter};
    use hetsched_platform::{outer_lower_bound, Platform, SpeedDistribution, SpeedModel};
    use hetsched_util::rng::rng_for;

    #[test]
    fn threshold_from_beta() {
        let s = DynamicOuter2Phases::with_beta(100, 4, 4.0);
        // e^{-4}·10000 ≈ 183.16 → 183.
        assert_eq!(s.threshold(), 183);
    }

    #[test]
    fn threshold_from_fraction() {
        let s = DynamicOuter2Phases::with_phase1_fraction(10, 2, 0.9);
        assert_eq!(s.threshold(), 10);
    }

    #[test]
    fn zero_threshold_degenerates_to_pure_dynamic() {
        let pf = Platform::homogeneous(5);
        let seed_rng = || rng_for(0, 7);
        let (two, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicOuter2Phases::new(30, 5, 0),
            &mut seed_rng(),
        );
        let (pure, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicOuter::new(30, 5),
            &mut seed_rng(),
        );
        assert_eq!(two.total_blocks, pure.total_blocks);
    }

    #[test]
    fn full_threshold_degenerates_to_pure_random() {
        let pf = Platform::homogeneous(5);
        let seed_rng = || rng_for(1, 7);
        let (two, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicOuter2Phases::new(30, 5, 900),
            &mut seed_rng(),
        );
        let (pure, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            RandomOuter::new(30, 5),
            &mut seed_rng(),
        );
        assert_eq!(two.total_blocks, pure.total_blocks);
    }

    #[test]
    fn beta_zero_is_pure_random() {
        // β = 0 ⇒ threshold = n² ⇒ every request is a phase-2 random step.
        let pf = Platform::from_speeds(vec![10.0, 40.0]);
        let seed_rng = || rng_for(5, 7);
        let two = DynamicOuter2Phases::with_beta(20, 2, 0.0);
        assert_eq!(two.threshold(), 400);
        let (two, sched) = hetsched_sim::run(&pf, SpeedModel::Fixed, two, &mut seed_rng());
        let (pure, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            RandomOuter::new(20, 2),
            &mut seed_rng(),
        );
        assert_eq!(two.total_blocks, pure.total_blocks);
        assert_eq!(sched.phase1_tasks(), 0);
        assert_eq!(sched.phase2_tasks(), 400);
    }

    #[test]
    fn fraction_one_is_pure_dynamic() {
        // fraction = 1 ⇒ threshold = 0 ⇒ every request is a phase-1
        // dynamic step.
        let pf = Platform::from_speeds(vec![10.0, 40.0]);
        let seed_rng = || rng_for(6, 7);
        let two = DynamicOuter2Phases::with_phase1_fraction(20, 2, 1.0);
        assert_eq!(two.threshold(), 0);
        let (two, sched) = hetsched_sim::run(&pf, SpeedModel::Fixed, two, &mut seed_rng());
        let (pure, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicOuter::new(20, 2),
            &mut seed_rng(),
        );
        assert_eq!(two.total_blocks, pure.total_blocks);
        assert_eq!(sched.phase2_tasks(), 0);
        assert_eq!(sched.phase1_tasks(), 400);
    }

    #[test]
    fn beta_and_fraction_thresholds_round_identically() {
        // Both parameterizations round to nearest: the same switch point
        // expressed either way yields the same threshold.
        for n in [10usize, 33, 100] {
            for beta in [0.5f64, 1.0, 3.3, 6.0] {
                let frac = 1.0 - (-beta).exp();
                let a = DynamicOuter2Phases::with_beta(n, 2, beta);
                let b = DynamicOuter2Phases::with_phase1_fraction(n, 2, frac);
                assert_eq!(a.threshold(), b.threshold(), "n={n} β={beta}");
            }
        }
    }

    #[test]
    fn phase_accounting_is_exhaustive() {
        let pf = Platform::from_speeds(vec![20.0, 30.0, 50.0]);
        let mut rng = rng_for(2, 0);
        let (report, sched) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicOuter2Phases::with_beta(40, 3, 4.0),
            &mut rng,
        );
        assert_eq!(sched.phase1_tasks() + sched.phase2_tasks(), 1600);
        assert_eq!(
            sched.phase1_blocks() + sched.phase2_blocks(),
            report.total_blocks
        );
        assert!(sched.phase2_tasks() > 0, "β=4 on n=40 leaves an end game");
        assert!(
            sched.phase2_tasks() <= sched.threshold(),
            "phase 2 handles at most the threshold"
        );
    }

    #[test]
    fn improves_on_pure_dynamic_with_good_beta() {
        // Paper Fig. 2/6: a well-chosen threshold strictly reduces comm.
        let mut seed = rng_for(3, 0);
        let pf = Platform::sample(20, &SpeedDistribution::paper_default(), &mut seed);
        let lb = outer_lower_bound(100, &pf);
        let mut dyn_sum = 0.0;
        let mut two_sum = 0.0;
        for t in 0..5u64 {
            let (d, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                DynamicOuter::new(100, 20),
                &mut rng_for(100 + t, 0),
            );
            let (w, _) = hetsched_sim::run(
                &pf,
                SpeedModel::Fixed,
                DynamicOuter2Phases::with_beta(100, 20, 4.17),
                &mut rng_for(100 + t, 0),
            );
            dyn_sum += d.normalized(lb);
            two_sum += w.normalized(lb);
        }
        assert!(
            two_sum < dyn_sum,
            "two-phase {two_sum} should beat pure dynamic {dyn_sum}"
        );
    }

    #[test]
    fn n_equals_one_works() {
        // Degenerate problem: a single task.
        let pf = Platform::homogeneous(3);
        let (report, sched) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicOuter2Phases::with_beta(1, 3, 4.0),
            &mut rng_for(9, 0),
        );
        assert_eq!(sched.phase1_tasks() + sched.phase2_tasks(), 1);
        assert_eq!(report.ledger.total_tasks(), 1);
        assert_eq!(report.total_blocks, 2);
    }

    #[test]
    fn more_workers_than_tasks() {
        // p = 30 workers for a 4×4 task grid: most workers never get work,
        // but everything still completes exactly once.
        let pf = Platform::homogeneous(30);
        let (report, _) = hetsched_sim::run(
            &pf,
            SpeedModel::Fixed,
            DynamicOuter2Phases::with_beta(4, 30, 3.0),
            &mut rng_for(10, 0),
        );
        assert_eq!(report.ledger.total_tasks(), 16);
    }

    #[test]
    fn introspection_reports_phase_and_knowledge() {
        let mut s = DynamicOuter2Phases::new(10, 2, 50);
        assert_eq!(s.phase(), Some(1));
        assert_eq!(s.useful_fraction(ProcId(0)), Some(0.0));
        let mut rng = rng_for(7, 0);
        let mut out = Vec::new();
        while s.remaining() > 50 {
            out.clear();
            s.on_request(ProcId(0), &mut rng, &mut out);
        }
        assert_eq!(s.phase(), Some(2));
        let f = s.useful_fraction(ProcId(0)).unwrap();
        assert!(f > 0.0 && f <= 1.0, "{f}");
        // The idle worker acquired nothing.
        assert_eq!(s.useful_fraction(ProcId(1)), Some(0.0));
    }

    #[test]
    fn in_phase2_flag_transitions() {
        let mut s = DynamicOuter2Phases::new(10, 1, 50);
        let mut rng = rng_for(4, 0);
        let mut out = Vec::new();
        assert!(!s.in_phase2());
        while s.remaining() > 50 {
            out.clear();
            s.on_request(ProcId(0), &mut rng, &mut out);
        }
        assert!(s.in_phase2());
    }
}
