//! The four outer-product scheduling strategies.
//!
//! All strategies share two primitive steps, factored here so that
//! `DynamicOuter2Phases` is *literally* `DynamicOuter` followed by
//! `RandomOuter` on the same state:
//!
//! * `random_step` — allocate one uniformly random unprocessed task and
//!   ship its missing inputs (Algorithm 2, phase 2);
//! * `dynamic_step` — ship one new random `a` block and one new random
//!   `b` block, allocate every unprocessed task they enable, and repeat if
//!   that enabled nothing (Algorithm 1).

mod dynamic;
mod random;
mod sorted;
mod two_phase;

pub use dynamic::DynamicOuter;
pub use random::RandomOuter;
pub use sorted::SortedOuter;
pub use two_phase::DynamicOuter2Phases;

use crate::ownership::WorkerData;
use crate::state::OuterState;
use hetsched_sim::Allocation;
use rand::rngs::StdRng;

/// One step of the basic randomized strategy: pick a uniformly random
/// unprocessed task `T(i,j)`, ship `a_i` and/or `b_j` if missing, allocate
/// the task. Allocated task ids are appended to `out`.
pub(crate) fn random_step(
    state: &mut OuterState,
    worker: &mut WorkerData,
    rng: &mut StdRng,
    out: &mut Vec<u32>,
) -> Allocation {
    let Some((i, j)) = state.random_unprocessed(rng) else {
        return Allocation::DONE;
    };
    let fresh = state.mark_processed(i, j);
    debug_assert!(fresh);
    out.push(state.task_id(i, j));
    let mut blocks = 0;
    if worker.a.acquire(i) {
        blocks += 1;
    }
    if worker.b.acquire(j) {
        blocks += 1;
    }
    Allocation { tasks: 1, blocks }
}

/// One step of the data-aware strategy: extend the worker's known index
/// sets `I` and `J` by one random unknown row and column, allocating every
/// unprocessed task of the new row/column of its known sub-grid. Repeats
/// the extension (still paying for the shipped blocks) until at least one
/// task is allocated or the problem is finished — a worker that knows both
/// full vectors can have no unprocessed task left, so the loop terminates.
pub(crate) fn dynamic_step(
    state: &mut OuterState,
    worker: &mut WorkerData,
    rng: &mut StdRng,
    out: &mut Vec<u32>,
) -> Allocation {
    if state.has_orphans() {
        // Failure-reinserted tasks whose inputs this worker already holds
        // are invisible to the extension loop below (it only scans the
        // newly bought row/column), so re-allocate them first — at zero
        // shipping cost, since both inputs are on the worker.
        let known: Vec<u32> = state
            .orphans()
            .iter()
            .copied()
            .filter(|&id| {
                let (i, j) = state.coords(id);
                worker.a.owns(i) && worker.b.owns(j)
            })
            .collect();
        if !known.is_empty() {
            for &id in &known {
                let (i, j) = state.coords(id);
                let fresh = state.mark_processed(i, j);
                debug_assert!(fresh);
                out.push(id);
            }
            return Allocation {
                tasks: known.len(),
                blocks: 0,
            };
        }
    }
    let mut blocks = 0u64;
    loop {
        if state.remaining() == 0 {
            return Allocation { tasks: 0, blocks };
        }
        let new_a = worker.a.acquire_random(rng);
        let mut tasks = 0usize;
        if let Some(i) = new_a {
            blocks += 1;
            // New row i against the b blocks known *before* this step's new
            // column, so the (i, j) corner is counted exactly once below.
            for &j2 in worker.b.owned_list() {
                if state.mark_processed(i, j2 as usize) {
                    out.push(state.task_id(i, j2 as usize));
                    tasks += 1;
                }
            }
        }
        let new_b = worker.b.acquire_random(rng);
        if let Some(j) = new_b {
            blocks += 1;
            // New column j against all known a blocks, including a fresh i.
            for &i2 in worker.a.owned_list() {
                if state.mark_processed(i2 as usize, j) {
                    out.push(state.task_id(i2 as usize, j));
                    tasks += 1;
                }
            }
        }
        if new_a.is_none() && new_b.is_none() {
            // Worker holds both vectors entirely. Normally nothing remains
            // in its reach (any still-remaining task belongs to a race some
            // other worker already won, and there is none: full knowledge
            // covers the grid) — but failure-reinserted tasks may sit in
            // the pool, and this worker can compute them all without
            // further shipping.
            let mut tasks = 0usize;
            while let Some((i, j)) = state.random_unprocessed(rng) {
                let fresh = state.mark_processed(i, j);
                debug_assert!(fresh);
                out.push(state.task_id(i, j));
                tasks += 1;
            }
            return Allocation { tasks, blocks };
        }
        if tasks > 0 {
            return Allocation { tasks, blocks };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_util::rng::rng_for;

    // Most tests here predate the task-id sink and only care about counts;
    // these shims (which shadow the glob imports) discard the ids.
    fn random_step(s: &mut OuterState, w: &mut WorkerData, r: &mut StdRng) -> Allocation {
        super::random_step(s, w, r, &mut Vec::new())
    }
    fn dynamic_step(s: &mut OuterState, w: &mut WorkerData, r: &mut StdRng) -> Allocation {
        super::dynamic_step(s, w, r, &mut Vec::new())
    }

    #[test]
    fn steps_report_allocated_task_ids() {
        let mut state = OuterState::new(6);
        let mut w = WorkerData::new(6);
        let mut rng = rng_for(99, 0);
        let mut out = Vec::new();
        let a = super::dynamic_step(&mut state, &mut w, &mut rng, &mut out);
        assert_eq!(out.len(), a.tasks);
        for &id in &out {
            let (i, j) = state.coords(id);
            assert!(state.is_processed(i, j));
            assert!(w.a.owns(i) && w.b.owns(j), "worker holds the inputs");
        }
        out.clear();
        let a = super::random_step(&mut state, &mut w, &mut rng, &mut out);
        assert_eq!(out.len(), a.tasks);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn random_step_ships_at_most_two_blocks() {
        let mut state = OuterState::new(8);
        let mut w = WorkerData::new(8);
        let mut rng = rng_for(0, 0);
        let a = random_step(&mut state, &mut w, &mut rng);
        assert_eq!(a.tasks, 1);
        assert_eq!(a.blocks, 2, "first task always ships both inputs");
        // Drain everything: per-step blocks are always ≤ 2.
        while state.remaining() > 0 {
            let a = random_step(&mut state, &mut w, &mut rng);
            assert_eq!(a.tasks, 1);
            assert!(a.blocks <= 2);
        }
        assert!(random_step(&mut state, &mut w, &mut rng).is_done());
    }

    #[test]
    fn single_worker_random_ships_each_block_once() {
        let n = 6;
        let mut state = OuterState::new(n);
        let mut w = WorkerData::new(n);
        let mut rng = rng_for(1, 0);
        let mut total_blocks = 0;
        while state.remaining() > 0 {
            total_blocks += random_step(&mut state, &mut w, &mut rng).blocks;
        }
        // A single worker eventually owns each of the 2n blocks exactly once.
        assert_eq!(total_blocks, 2 * n as u64);
    }

    #[test]
    fn dynamic_step_first_call_allocates_one_task_two_blocks() {
        let mut state = OuterState::new(8);
        let mut w = WorkerData::new(8);
        let mut rng = rng_for(2, 0);
        let a = dynamic_step(&mut state, &mut w, &mut rng);
        // First extension: row+column of a 1×1 grid = the single task (i,j).
        assert_eq!(a.tasks, 1);
        assert_eq!(a.blocks, 2);
        assert_eq!(w.a.count(), 1);
        assert_eq!(w.b.count(), 1);
    }

    #[test]
    fn dynamic_step_kth_call_allocates_2k_minus_1_when_alone() {
        // With a single worker nothing is stolen, so the k-th extension
        // allocates the full new row+column: 2k−1 tasks.
        let mut state = OuterState::new(10);
        let mut w = WorkerData::new(10);
        let mut rng = rng_for(3, 0);
        for k in 1..=10u64 {
            let a = dynamic_step(&mut state, &mut w, &mut rng);
            assert_eq!(a.tasks as u64, 2 * k - 1, "extension {k}");
            assert_eq!(a.blocks, 2);
        }
        assert_eq!(state.remaining(), 0);
        assert!(dynamic_step(&mut state, &mut w, &mut rng).is_done());
    }

    #[test]
    fn dynamic_step_returns_immediately_when_no_tasks_remain() {
        let n = 5;
        let mut state = OuterState::new(n);
        let mut w1 = WorkerData::new(n);
        let mut w2 = WorkerData::new(n);
        let mut rng = rng_for(4, 0);
        // w2 learns one pair first.
        let first = dynamic_step(&mut state, &mut w2, &mut rng);
        assert_eq!(first.tasks, 1);
        // w1 hoovers up the rest.
        while state.remaining() > 0 {
            dynamic_step(&mut state, &mut w1, &mut rng);
        }
        // Nothing remains: w2's next request ends without buying anything.
        let done = dynamic_step(&mut state, &mut w2, &mut rng);
        assert!(done.is_done());
        assert_eq!(done.blocks, 0);
    }

    #[test]
    fn dynamic_step_retries_when_extension_enables_nothing() {
        // n = 3; the only unprocessed task is (2, 2) and the worker owns
        // only (a0, b0). An extension drawing e.g. (a1, b1) enables nothing,
        // so the step must keep buying blocks (blocks > 2) within a single
        // allocation until it reaches (2, 2).
        let mut retried = false;
        for seed in 0..20u64 {
            let n = 3;
            let mut state = OuterState::new(n);
            let mut w = WorkerData::new(n);
            w.a.acquire(0);
            w.b.acquire(0);
            for i in 0..n {
                for j in 0..n {
                    if (i, j) != (2, 2) {
                        state.mark_processed(i, j);
                    }
                }
            }
            let mut rng = rng_for(400 + seed, 0);
            let a = dynamic_step(&mut state, &mut w, &mut rng);
            assert_eq!(a.tasks, 1, "must end by allocating (2,2)");
            assert!(a.blocks >= 2 && a.blocks.is_multiple_of(2));
            assert_eq!(state.remaining(), 0);
            if a.blocks > 2 {
                retried = true;
            }
        }
        assert!(retried, "no seed exercised the retry path");
    }

    #[test]
    fn steps_never_allocate_processed_tasks() {
        let mut state = OuterState::new(12);
        let mut workers = WorkerData::fleet(12, 3);
        let mut rng = rng_for(5, 0);
        let mut allocated = 0usize;
        let mut turn = 0usize;
        while state.remaining() > 0 {
            let w = turn % 3;
            let a = if w == 0 {
                random_step(&mut state, &mut workers[w], &mut rng)
            } else {
                dynamic_step(&mut state, &mut workers[w], &mut rng)
            };
            allocated += a.tasks;
            turn += 1;
        }
        // Exactly-once: totals line up with the grid.
        assert_eq!(allocated, 144);
    }
}
