//! Per-worker block ownership for the outer product.
//!
//! The generic index-set tracker lives in
//! [`hetsched_util::owned::OwnedSet`]; this module pairs two of them into
//! the worker's view of the `a` and `b` vectors (the paper's index sets
//! `I` and `J`).

pub use hetsched_util::OwnedSet as VectorOwnership;

/// A worker's view of both input vectors.
#[derive(Clone, Debug)]
pub struct WorkerData {
    /// Blocks of `a` on the worker (the paper's index set `I`).
    pub a: VectorOwnership,
    /// Blocks of `b` on the worker (the paper's index set `J`).
    pub b: VectorOwnership,
}

impl WorkerData {
    /// Fresh worker holding nothing.
    pub fn new(n: usize) -> Self {
        WorkerData {
            a: VectorOwnership::new(n),
            b: VectorOwnership::new(n),
        }
    }

    /// Fresh worker over a `rows × cols` task rectangle (a hierarchy
    /// shard): `a` spans the shard's rows, `b` its columns.
    pub fn rect(rows: usize, cols: usize) -> Self {
        WorkerData {
            a: VectorOwnership::new(rows),
            b: VectorOwnership::new(cols),
        }
    }

    /// Per-worker fleet constructor.
    pub fn fleet(n: usize, p: usize) -> Vec<WorkerData> {
        (0..p).map(|_| WorkerData::new(n)).collect()
    }

    /// [`rect`](Self::rect) fleet constructor.
    pub fn fleet_rect(rows: usize, cols: usize, p: usize) -> Vec<WorkerData> {
        (0..p).map(|_| WorkerData::rect(rows, cols)).collect()
    }

    /// Fraction of all `2n` input blocks this worker owns — the knowledge
    /// state the paper's ODE model evolves (`x_k` tracks `|I_k| = |J_k|`
    /// for the dynamic strategy). Probes report it per sample.
    pub fn knowledge_fraction(&self) -> f64 {
        let owned = self.a.count() + self.b.count();
        let total = owned + self.a.unknown_count() + self.b.unknown_count();
        owned as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_independent() {
        let mut fleet = WorkerData::fleet(4, 3);
        fleet[0].a.acquire(1);
        assert!(fleet[0].a.owns(1));
        assert!(!fleet[1].a.owns(1));
        assert!(!fleet[0].b.owns(1));
    }

    #[test]
    fn a_and_b_are_independent_dimensions() {
        let mut w = WorkerData::new(5);
        w.a.acquire(2);
        assert!(w.a.owns(2));
        assert!(!w.b.owns(2));
        w.b.acquire(4);
        assert_eq!(w.a.count(), 1);
        assert_eq!(w.b.count(), 1);
    }
}
