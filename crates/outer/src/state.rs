//! Global task state for the outer product.

use hetsched_util::{BitGrid, SwapList};
use rand::rngs::StdRng;

/// The `rows × cols` task grid (an `n × n` square for a flat run): which
/// tasks have been allocated ("processed" in the paper's vocabulary —
/// allocation wins the race), plus an O(1) uniform sampler over the
/// unprocessed residue.
#[derive(Clone, Debug)]
pub struct OuterState {
    processed: BitGrid,
    remaining: SwapList,
    /// Tasks returned to the pool by a worker failure and not yet
    /// re-allocated. Empty except under fault injection.
    orphans: Vec<u32>,
}

impl OuterState {
    /// Fresh state with all `n²` tasks unprocessed.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one block per vector");
        Self::rect(n, n)
    }

    /// Fresh state over a `rows × cols` rectangle — a hierarchy shard of
    /// the full task grid. Zero-extent shards are allowed (no tasks).
    pub fn rect(rows: usize, cols: usize) -> Self {
        OuterState {
            processed: BitGrid::new(rows, cols),
            remaining: SwapList::full(rows * cols),
            orphans: Vec::new(),
        }
    }

    /// Blocks of the `a` vector (task-grid rows).
    #[inline]
    pub fn rows(&self) -> usize {
        self.processed.rows()
    }

    /// Blocks of the `b` vector (task-grid columns).
    #[inline]
    pub fn cols(&self) -> usize {
        self.processed.cols()
    }

    /// Total number of tasks (`rows·cols`).
    #[inline]
    pub fn total(&self) -> usize {
        self.processed.total()
    }

    /// Tasks not yet allocated.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining.len()
    }

    /// Linear task id of `T(i,j)`.
    #[inline]
    pub fn task_id(&self, i: usize, j: usize) -> u32 {
        self.processed.linear(i, j) as u32
    }

    /// Inverse of [`task_id`](Self::task_id).
    #[inline]
    pub fn coords(&self, id: u32) -> (usize, usize) {
        self.processed.coords(id as usize)
    }

    /// True if `T(i,j)` has been allocated.
    #[inline]
    pub fn is_processed(&self, i: usize, j: usize) -> bool {
        self.processed.contains(i, j)
    }

    /// Marks `T(i,j)` allocated; returns `true` if it was unprocessed.
    pub fn mark_processed(&mut self, i: usize, j: usize) -> bool {
        if self.processed.insert(i, j) {
            let id = self.task_id(i, j);
            let removed = self.remaining.remove(id);
            debug_assert!(removed);
            if !self.orphans.is_empty() {
                if let Some(pos) = self.orphans.iter().position(|&o| o == id) {
                    self.orphans.swap_remove(pos);
                }
            }
            true
        } else {
            false
        }
    }

    /// Returns a previously allocated task to the pool — its owner failed
    /// before computing it. Returns `true` if the task was indeed allocated.
    pub fn reinsert(&mut self, id: u32) -> bool {
        let (i, j) = self.coords(id);
        if self.processed.remove(i, j) {
            let inserted = self.remaining.insert(id);
            debug_assert!(inserted);
            self.orphans.push(id);
            true
        } else {
            false
        }
    }

    /// True while failure-reinserted tasks sit in the pool.
    #[inline]
    pub fn has_orphans(&self) -> bool {
        !self.orphans.is_empty()
    }

    /// The failure-reinserted tasks not yet re-allocated.
    #[inline]
    pub fn orphans(&self) -> &[u32] {
        &self.orphans
    }

    /// A uniformly random unprocessed task, or `None` when done.
    pub fn random_unprocessed(&self, rng: &mut StdRng) -> Option<(usize, usize)> {
        self.remaining.peek_random(rng).map(|id| self.coords(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_util::rng::rng_for;

    #[test]
    fn fresh_state_counts() {
        let s = OuterState::new(10);
        assert_eq!(s.total(), 100);
        assert_eq!(s.remaining(), 100);
        assert!(!s.is_processed(3, 4));
    }

    #[test]
    fn mark_processed_updates_both_views() {
        let mut s = OuterState::new(5);
        assert!(s.mark_processed(2, 3));
        assert!(!s.mark_processed(2, 3), "idempotent");
        assert!(s.is_processed(2, 3));
        assert_eq!(s.remaining(), 24);
    }

    #[test]
    fn random_unprocessed_never_returns_processed() {
        let mut s = OuterState::new(4);
        let mut rng = rng_for(0, 0);
        // Process everything except (1, 2).
        for i in 0..4 {
            for j in 0..4 {
                if (i, j) != (1, 2) {
                    s.mark_processed(i, j);
                }
            }
        }
        for _ in 0..20 {
            assert_eq!(s.random_unprocessed(&mut rng), Some((1, 2)));
        }
        s.mark_processed(1, 2);
        assert_eq!(s.random_unprocessed(&mut rng), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn reinsert_returns_task_to_pool() {
        let mut s = OuterState::new(4);
        assert!(!s.reinsert(s.task_id(1, 2)), "unprocessed tasks stay put");
        assert!(s.mark_processed(1, 2));
        assert_eq!(s.remaining(), 15);
        assert!(s.reinsert(s.task_id(1, 2)));
        assert!(!s.is_processed(1, 2));
        assert_eq!(s.remaining(), 16);
        assert!(s.has_orphans());
        assert_eq!(s.orphans(), &[s.task_id(1, 2)]);
        // Re-allocation clears the orphan marker.
        assert!(s.mark_processed(1, 2));
        assert!(!s.has_orphans());
        assert_eq!(s.remaining(), 15);
    }

    #[test]
    fn task_id_round_trip() {
        let s = OuterState::new(7);
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(s.coords(s.task_id(i, j)), (i, j));
            }
        }
    }
}
