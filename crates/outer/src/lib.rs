//! The outer-product kernel `M = a·bᵗ` and its dynamic scheduling
//! strategies (paper §3).
//!
//! Vectors `a` and `b` are split into `n = N/l` blocks; task `T(i,j)`
//! computes the block outer product `a_i·b_jᵗ`. There are `n²` independent
//! tasks, but each `a_i` is an input to `n` of them — the whole game is to
//! allocate tasks so that the blocks already cached on a worker are reused,
//! keeping the master→worker communication volume close to the lower bound
//! `2n·Σ√rs_k`.
//!
//! Four strategies, in increasing order of data awareness:
//!
//! * [`RandomOuter`] — uniformly random unprocessed
//!   task per request; ship whatever inputs are missing.
//! * [`SortedOuter`] — tasks in lexicographic
//!   order; ship missing inputs.
//! * [`DynamicOuter`] — per request the master
//!   ships one *new* `a` block and one *new* `b` block chosen uniformly at
//!   random, and allocates every still-unprocessed task the worker can now
//!   form (the new row/column of its known sub-grid).
//! * [`DynamicOuter2Phases`] —
//!   `DynamicOuter` until fewer than `e^{−β}·n²` tasks remain, then
//!   `RandomOuter` for the end game.

pub mod ownership;
pub mod state;
pub mod strategies;

pub use ownership::{VectorOwnership, WorkerData};
pub use state::OuterState;
pub use strategies::{DynamicOuter, DynamicOuter2Phases, RandomOuter, SortedOuter};
