//! The warehouse schema: one wide table every ingest source maps onto.
//!
//! Rows are keyed by `(campaign, run, config)` — campaign names the
//! sweep, `run` the artifact within it, `config` the 16-hex-digit hash of
//! the experiment configuration (see [`crate::config_hash`]) — plus the
//! master `seed`. The remaining columns are a union of what the sources
//! need: probe samples fill the per-worker engine-state columns, run
//! reports and summaries fill `metric`/`value`/`sigma`, figure rows fill
//! `series`/`t`/`value`/`sigma`, bench snapshots and serve transitions
//! fill `metric`/`series`/`value`. Unused numeric columns hold 0 (integer)
//! or NaN (float); unused strings are empty. A long/narrow union schema
//! keeps the store dependency-free: every query is projection + predicate
//! + group-by over one table, no joins.

/// Physical column types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// Dictionary-encoded UTF-8 string.
    Str,
    /// Unsigned counter, delta + zigzag + varint encoded.
    U64,
    /// Signed integer, delta + zigzag + varint encoded.
    I64,
    /// IEEE double, raw little-endian bits (exact round trip).
    F64,
}

/// The fixed column set, in on-disk order.
pub const COLUMNS: &[(&str, ColumnType)] = &[
    ("campaign", ColumnType::Str),
    ("run", ColumnType::Str),
    ("kind", ColumnType::Str),
    ("strategy", ColumnType::Str),
    ("metric", ColumnType::Str),
    ("series", ColumnType::Str),
    ("config", ColumnType::Str),
    ("seed", ColumnType::U64),
    ("worker", ColumnType::I64),
    ("events", ColumnType::U64),
    ("remaining", ColumnType::U64),
    ("blocks", ColumnType::U64),
    ("tasks", ColumnType::U64),
    ("queue_depth", ColumnType::U64),
    ("t", ColumnType::F64),
    ("value", ColumnType::F64),
    ("sigma", ColumnType::F64),
    ("useful", ColumnType::F64),
    ("link_busy", ColumnType::F64),
    ("beta", ColumnType::F64),
];

/// Index of `name` in [`COLUMNS`], or a contextful error listing the
/// valid names — surfaced verbatim by `hetsched query`.
pub fn column_index(name: &str) -> Result<usize, String> {
    COLUMNS.iter().position(|(n, _)| *n == name).ok_or_else(|| {
        let names: Vec<&str> = COLUMNS.iter().map(|(n, _)| *n).collect();
        format!("unknown column {name:?} (columns: {})", names.join(", "))
    })
}

/// One row, in memory. Construct with [`Row::new`] and fill what the
/// source provides; the defaults are the documented "absent" values.
#[derive(Clone, Debug)]
pub struct Row {
    pub campaign: String,
    pub run: String,
    pub kind: String,
    pub strategy: String,
    pub metric: String,
    pub series: String,
    pub config: String,
    pub seed: u64,
    /// Worker index, `-1` when the row is not per-worker.
    pub worker: i64,
    pub events: u64,
    pub remaining: u64,
    pub blocks: u64,
    pub tasks: u64,
    pub queue_depth: u64,
    pub t: f64,
    pub value: f64,
    pub sigma: f64,
    pub useful: f64,
    pub link_busy: f64,
    pub beta: f64,
}

impl Row {
    /// A row of kind `kind` under the given run key, every other column at
    /// its "absent" default.
    pub fn new(campaign: &str, run: &str, kind: &str, config: &str) -> Row {
        Row {
            campaign: campaign.to_string(),
            run: run.to_string(),
            kind: kind.to_string(),
            strategy: String::new(),
            metric: String::new(),
            series: String::new(),
            config: config.to_string(),
            seed: 0,
            worker: -1,
            events: 0,
            remaining: 0,
            blocks: 0,
            tasks: 0,
            queue_depth: 0,
            t: f64::NAN,
            value: f64::NAN,
            sigma: f64::NAN,
            useful: f64::NAN,
            link_busy: f64::NAN,
            beta: f64::NAN,
        }
    }

    /// The inverse of per-column [`Row::get`]: rebuilds a row from one
    /// [`Value`] per column, in [`COLUMNS`] order. Errors when a value's
    /// type disagrees with the schema — decoded segment data can only
    /// trip this if the file lied about its column types.
    pub fn from_values(values: &[Value]) -> Result<Row, String> {
        if values.len() != COLUMNS.len() {
            return Err(format!(
                "row has {} values, schema wants {}",
                values.len(),
                COLUMNS.len()
            ));
        }
        let type_err = |idx: usize| {
            format!(
                "column {} ({:?}): value type does not match schema",
                COLUMNS[idx].0, COLUMNS[idx].1
            )
        };
        let s = |idx: usize| match &values[idx] {
            Value::Str(v) => Ok(v.clone()),
            _ => Err(type_err(idx)),
        };
        let u = |idx: usize| match values[idx] {
            Value::U64(v) => Ok(v),
            _ => Err(type_err(idx)),
        };
        let i = |idx: usize| match values[idx] {
            Value::I64(v) => Ok(v),
            _ => Err(type_err(idx)),
        };
        let f = |idx: usize| match values[idx] {
            Value::F64(v) => Ok(v),
            _ => Err(type_err(idx)),
        };
        Ok(Row {
            campaign: s(0)?,
            run: s(1)?,
            kind: s(2)?,
            strategy: s(3)?,
            metric: s(4)?,
            series: s(5)?,
            config: s(6)?,
            seed: u(7)?,
            worker: i(8)?,
            events: u(9)?,
            remaining: u(10)?,
            blocks: u(11)?,
            tasks: u(12)?,
            queue_depth: u(13)?,
            t: f(14)?,
            value: f(15)?,
            sigma: f(16)?,
            useful: f(17)?,
            link_busy: f(18)?,
            beta: f(19)?,
        })
    }

    /// The row's value in column `idx` (an index into [`COLUMNS`]).
    pub fn get(&self, idx: usize) -> Value {
        match idx {
            0 => Value::Str(self.campaign.clone()),
            1 => Value::Str(self.run.clone()),
            2 => Value::Str(self.kind.clone()),
            3 => Value::Str(self.strategy.clone()),
            4 => Value::Str(self.metric.clone()),
            5 => Value::Str(self.series.clone()),
            6 => Value::Str(self.config.clone()),
            7 => Value::U64(self.seed),
            8 => Value::I64(self.worker),
            9 => Value::U64(self.events),
            10 => Value::U64(self.remaining),
            11 => Value::U64(self.blocks),
            12 => Value::U64(self.tasks),
            13 => Value::U64(self.queue_depth),
            14 => Value::F64(self.t),
            15 => Value::F64(self.value),
            16 => Value::F64(self.sigma),
            17 => Value::F64(self.useful),
            18 => Value::F64(self.link_busy),
            19 => Value::F64(self.beta),
            other => panic!("column index {other} out of range"),
        }
    }
}

/// One cell, as the query engine and the ingest layer see it.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Str(String),
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Value {
    /// Numeric view (strings have none); `U64`/`I64` widen to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Str(_) => None,
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
        }
    }

    /// CSV cell rendering: strings verbatim, floats via Rust's
    /// shortest-round-trip `Display` (deterministic, parses back exactly).
    pub fn render_csv(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => v.to_string(),
        }
    }

    /// JSON fragment rendering: strings escaped and quoted, non-finite
    /// floats as `null` (matching the trace sinks' `num` convention).
    pub fn render_json(&self) -> String {
        match self {
            Value::Str(s) => format!("\"{}\"", hetsched_core::provenance::json_escape(s)),
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) if v.is_finite() => v.to_string(),
            Value::F64(_) => "null".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_lookup_and_error() {
        assert_eq!(column_index("campaign").unwrap(), 0);
        assert_eq!(column_index("beta").unwrap(), COLUMNS.len() - 1);
        let err = column_index("makespan").unwrap_err();
        assert!(err.contains("unknown column"), "{err}");
        assert!(err.contains("\"makespan\""), "{err}");
        assert!(err.contains("campaign, run, kind"), "{err}");
    }

    #[test]
    fn row_defaults_and_get_cover_every_column() {
        let row = Row::new("c", "r", "probe", "abc");
        for (i, (name, ty)) in COLUMNS.iter().enumerate() {
            let v = row.get(i);
            match ty {
                ColumnType::Str => assert!(matches!(v, Value::Str(_)), "{name}"),
                ColumnType::U64 => assert_eq!(v, Value::U64(0), "{name}"),
                ColumnType::I64 => assert_eq!(v, Value::I64(-1), "{name}"),
                ColumnType::F64 => {
                    assert!(matches!(v, Value::F64(x) if x.is_nan()), "{name}")
                }
            }
        }
        assert_eq!(row.get(2), Value::Str("probe".into()));
    }

    #[test]
    fn value_rendering() {
        assert_eq!(Value::Str("a\"b".into()).render_json(), "\"a\\\"b\"");
        assert_eq!(Value::F64(f64::NAN).render_json(), "null");
        assert_eq!(Value::F64(f64::NAN).render_csv(), "NaN");
        assert_eq!(Value::F64(0.5).render_csv(), "0.5");
        assert_eq!(Value::I64(-1).render_csv(), "-1");
    }
}
