//! Canned summaries over a store: the `hetsched stats` report.
//!
//! Three questions a campaign owner keeps asking, pre-compiled to
//! queries so the answers are one command away:
//!
//! 1. **Per-strategy makespan distribution** — count / mean / min / p50 /
//!    p95 / max of `kind=report, metric=makespan`, grouped by strategy.
//! 2. **Utilization vs β** — mean master-link utilization of
//!    `kind=report, metric=link_utilization`, grouped by the β each trial
//!    used (rows without a β, i.e. non-two-phase runs, are excluded by
//!    the `beta>=0` predicate since NaN matches no predicate).
//! 3. **Probe-overhead trend** — mean `probe_overhead_pct` from ingested
//!    `BENCH_*.json` snapshots, grouped by snapshot date; dates sort
//!    lexicographically = chronologically.

use crate::query::{build_query, run_query_with};
use crate::store::Store;

struct Section {
    title: &'static str,
    where_: &'static str,
    group_by: &'static str,
    agg: &'static str,
    empty_hint: &'static str,
}

const SECTIONS: &[Section] = &[
    Section {
        title: "makespan by strategy (kind=report, metric=makespan)",
        where_: "kind=report,metric=makespan",
        group_by: "strategy",
        agg: "count,mean(value),min(value),p50(value),p95(value),max(value)",
        empty_hint: "no report rows — run `hetsched simulate --store <dir>`",
    },
    Section {
        title: "link utilization vs beta (kind=report, metric=link_utilization)",
        where_: "kind=report,metric=link_utilization,beta>=0,value>0",
        group_by: "beta",
        agg: "count,mean(value),min(value),max(value)",
        empty_hint: "no networked two-phase rows — simulate with --beta ... --net one-port",
    },
    Section {
        title: "probe overhead trend (kind=bench, metric=probe_overhead_pct)",
        where_: "kind=bench,metric=probe_overhead_pct",
        group_by: "series",
        agg: "count,mean(value)",
        empty_hint: "no bench rows — `hetsched ingest --store <dir> BENCH_<date>.json`",
    },
];

/// Renders the full stats report on all cores. An empty store is not an
/// error: the report says so and exits cleanly.
pub fn stats_report(store: &Store) -> Result<String, String> {
    stats_report_with(store, None)
}

/// [`stats_report`] with an explicit scan-thread count (`None` = all
/// cores). Output is identical at any thread count.
pub fn stats_report_with(store: &Store, threads: Option<usize>) -> Result<String, String> {
    let segments = store
        .segment_paths()
        .map_err(|e| format!("cannot list store {}: {e}", store.dir().display()))?;
    let total = store.total_rows()?;
    let mut out = format!(
        "store {}: {} segment(s), {} row(s)\n",
        store.dir().display(),
        segments.len(),
        total
    );
    if segments.is_empty() {
        out.push_str(
            "store is empty — ingest runs with `simulate --store`, `figures --store`, \
             `serve --store`, or `hetsched ingest`\n",
        );
        return Ok(out);
    }
    for section in SECTIONS {
        out.push('\n');
        out.push_str("## ");
        out.push_str(section.title);
        out.push('\n');
        let q = build_query(
            None,
            Some(section.where_),
            Some(section.group_by),
            Some(section.agg),
            None,
        )?;
        let res = run_query_with(store, &q, threads)?;
        if res.rows.is_empty() {
            out.push('(');
            out.push_str(section.empty_hint);
            out.push_str(")\n");
        } else {
            out.push_str(&res.to_csv());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Row;

    #[test]
    fn empty_store_reports_cleanly() {
        let dir = std::env::temp_dir().join(format!("hsc-stats-empty-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir).unwrap();
        let report = stats_report(&store).unwrap();
        assert!(report.contains("0 segment(s)"), "{report}");
        assert!(report.contains("store is empty"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn populated_store_fills_sections() {
        let dir = std::env::temp_dir().join(format!("hsc-stats-full-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir).unwrap();
        let mut b = store.batch();
        for (strategy, makespan, beta, util) in [
            ("Dynamic", 10.0, f64::NAN, 0.0),
            ("DynamicOuter2Phases", 8.0, 0.3, 0.7),
            ("DynamicOuter2Phases", 9.0, 0.3, 0.8),
        ] {
            let mut r = Row::new("c", "r", "report", "cfg");
            r.strategy = strategy.to_string();
            r.metric = "makespan".to_string();
            r.value = makespan;
            r.beta = beta;
            b.push(r.clone());
            r.metric = "link_utilization".to_string();
            r.value = util;
            b.push(r);
        }
        let mut bench = Row::new("c", "bench-2026-08-08", "bench", "cfgb");
        bench.metric = "probe_overhead_pct".to_string();
        bench.series = "2026-08-08".to_string();
        bench.value = 3.5;
        b.push(bench);
        b.commit().unwrap();

        let report = stats_report(&store).unwrap();
        assert!(report.contains("## makespan by strategy"), "{report}");
        assert!(report.contains("DynamicOuter2Phases,2,8.5"), "{report}");
        // The utilization section groups by beta and excludes the NaN-β
        // Dynamic row.
        assert!(report.contains("0.3,2,0.75"), "{report}");
        assert!(!report.contains("Dynamic,1,0"), "{report}");
        assert!(report.contains("2026-08-08,1,3.5"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
