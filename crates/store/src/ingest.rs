//! Ingest: mapping every artifact the workspace produces onto warehouse
//! rows.
//!
//! All sources land in the one wide schema keyed by `(campaign, run,
//! config)`; the config key is the FNV-1a hash of the run's
//! `config_json` rendering, so a manifest read back from a trace file
//! hashes to the same key as the in-process `ExperimentConfig` that wrote
//! it. Row layouts per source:
//!
//! * **probe** — one row per `(sample, worker)`: shared `t` / `events` /
//!   `remaining` / `link_busy` / `queue_depth`, per-worker `blocks` /
//!   `tasks` / `useful`.
//! * **report** — one row per `(trial, metric)` with `t` = trial index
//!   and `seed` = the trial's derived seed, plus per-worker
//!   `worker_blocks` / `worker_tasks` rows.
//! * **summary** — one row per campaign-level statistic (`value` = mean,
//!   `sigma` = standard deviation).
//! * **figure** — one row per CSV point (`series` = plotted series,
//!   `t` = x, `value` = mean, `sigma` = std dev).
//! * **bench** — one row per numeric leaf of a `BENCH_*.json` snapshot,
//!   `metric` = the dotted path, `series` = the snapshot date.
//! * **serve** — one row per event-log line, `metric` = the event name.
//! * **trace** — the manifest/probe/event lines of a JSONL trace;
//!   events are aggregated to per-kind counts.

use hetsched_core::{config_json, ExperimentConfig, RunResult, TrialSummary};
use hetsched_sim::ProbeSeries;
use hetsched_util::OnlineStats;

use crate::json::{extract_num, extract_object, extract_str, extract_u64, flatten_numbers};
use crate::schema::Row;
use crate::store::fnv1a64;

/// The identity of one ingested run.
#[derive(Clone, Debug)]
pub struct RunKey {
    pub campaign: String,
    pub run: String,
    pub seed: u64,
    /// 16-hex-digit FNV-1a of the run's `config_json`.
    pub config: String,
}

impl RunKey {
    pub fn new(campaign: &str, run: &str, seed: u64, cfg: &ExperimentConfig) -> RunKey {
        RunKey {
            campaign: campaign.to_string(),
            run: run.to_string(),
            seed,
            config: config_hash(cfg),
        }
    }
}

/// The store's config key: FNV-1a over the canonical `config_json`
/// rendering. Seed-independent and `tree_threads`-independent, so every
/// run of the same experiment shares one key.
pub fn config_hash(cfg: &ExperimentConfig) -> String {
    format!("{:016x}", fnv1a64(config_json(cfg).as_bytes()))
}

/// The run id `simulate --store` uses: derived from seed and trial count
/// so re-running the same invocation dedupes.
pub fn sim_run_id(seed: u64, trials: usize) -> String {
    format!("sim-{seed:x}-t{trials}")
}

fn keyed(key: &RunKey, kind: &str, strategy: &str) -> Row {
    let mut r = Row::new(&key.campaign, &key.run, kind, &key.config);
    r.seed = key.seed;
    r.strategy = strategy.to_string();
    r
}

/// Probe series → one row per `(sample, worker)`.
pub fn probe_rows(key: &RunKey, strategy: &str, beta: f64, probes: &ProbeSeries) -> Vec<Row> {
    let mut rows = Vec::with_capacity(probes.len() * probes.workers());
    for s in probes.iter() {
        for w in 0..s.blocks_per_proc.len() {
            let mut r = keyed(key, "probe", strategy);
            r.metric = "sample".to_string();
            r.worker = w as i64;
            r.t = s.time;
            r.events = s.events;
            r.remaining = s.remaining as u64;
            r.blocks = s.blocks_per_proc[w];
            r.tasks = s.tasks_per_proc[w];
            r.useful = s.useful_fraction[w];
            r.link_busy = s.link_busy;
            r.queue_depth = s.queue_depth as u64;
            r.beta = beta;
            rows.push(r);
        }
    }
    rows
}

/// One trial's [`RunResult`] → per-metric rows plus per-worker rows.
pub fn report_rows(
    key: &RunKey,
    strategy: &str,
    trial_idx: usize,
    trial_seed: u64,
    r: &RunResult,
) -> Vec<Row> {
    let beta = r.beta_used.unwrap_or(f64::NAN);
    let metrics: &[(&str, f64)] = &[
        ("makespan", r.makespan),
        ("total_blocks", r.total_blocks as f64),
        ("normalized_comm", r.normalized_comm),
        ("lower_bound", r.lower_bound),
        ("lost_tasks", r.lost_tasks as f64),
        ("reshipped_blocks", r.reshipped_blocks as f64),
        ("link_utilization", r.link_utilization),
        ("max_queue_depth", r.max_queue_depth as f64),
        ("wasted_blocks", r.wasted_blocks as f64),
        ("tier_blocks", r.tier_blocks as f64),
        ("returned_blocks", r.returned_blocks as f64),
        ("transfer_wait", r.transfer_wait_per_proc.iter().sum()),
    ];
    let mut rows = Vec::with_capacity(metrics.len() + 2 * r.blocks_per_proc.len());
    for (name, value) in metrics {
        let mut row = keyed(key, "report", strategy);
        row.seed = trial_seed;
        row.metric = name.to_string();
        row.t = trial_idx as f64;
        row.value = *value;
        row.beta = beta;
        rows.push(row);
    }
    for w in 0..r.blocks_per_proc.len() {
        for (name, v) in [
            ("worker_blocks", r.blocks_per_proc[w]),
            ("worker_tasks", r.tasks_per_proc[w]),
        ] {
            let mut row = keyed(key, "report", strategy);
            row.seed = trial_seed;
            row.metric = name.to_string();
            row.t = trial_idx as f64;
            row.worker = w as i64;
            row.value = v as f64;
            row.blocks = r.blocks_per_proc[w];
            row.tasks = r.tasks_per_proc[w];
            row.beta = beta;
            rows.push(row);
        }
    }
    rows
}

/// Campaign-level [`TrialSummary`] → one row per statistic.
pub fn summary_rows(key: &RunKey, strategy: &str, summary: &TrialSummary) -> Vec<Row> {
    let stats: &[(&str, &OnlineStats)] = &[
        ("makespan", &summary.makespan),
        ("total_blocks", &summary.total_blocks),
        ("normalized_comm", &summary.normalized_comm),
        ("beta_used", &summary.beta_used),
        ("lost_tasks", &summary.lost_tasks),
        ("reshipped_blocks", &summary.reshipped_blocks),
        ("transfer_wait", &summary.transfer_wait),
        ("link_utilization", &summary.link_utilization),
        ("returned_blocks", &summary.returned_blocks),
    ];
    let mut rows = Vec::with_capacity(stats.len() + 1);
    for (name, s) in stats {
        let mut row = keyed(key, "summary", strategy);
        row.metric = name.to_string();
        row.value = s.mean();
        row.sigma = s.std_dev();
        rows.push(row);
    }
    let mut trials = keyed(key, "summary", strategy);
    trials.metric = "trials".to_string();
    trials.value = summary.trials as f64;
    rows.push(trials);
    rows
}

/// A figure CSV (`figure,series,x,mean,std_dev`) → one row per point.
/// Each figure id becomes its own run; the config key is the content
/// hash of the CSV, so re-ingesting the identical file dedupes.
pub fn figure_csv_rows(campaign: &str, csv: &str) -> Result<Vec<Row>, String> {
    let mut lines = csv.lines();
    let header = lines.next().unwrap_or("");
    if header != "figure,series,x,mean,std_dev" {
        return Err(format!(
            "not a figure CSV: expected header \"figure,series,x,mean,std_dev\", got {header:?}"
        ));
    }
    let config = format!("{:016x}", fnv1a64(csv.as_bytes()));
    let mut rows = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.splitn(5, ',').collect();
        if parts.len() != 5 {
            return Err(format!(
                "figure CSV line {}: expected 5 fields, got {}",
                lineno + 2,
                parts.len()
            ));
        }
        let parse = |s: &str, what: &str| -> Result<f64, String> {
            s.parse()
                .map_err(|_| format!("figure CSV line {}: bad {what} {s:?}", lineno + 2))
        };
        let mut r = Row::new(campaign, parts[0], "figure", &config);
        r.metric = parts[0].to_string();
        r.series = parts[1].to_string();
        r.strategy = parts[1].to_string();
        r.t = parse(parts[2], "x")?;
        r.value = parse(parts[3], "mean")?;
        r.sigma = parse(parts[4], "std_dev")?;
        rows.push(r);
    }
    Ok(rows)
}

/// A `BENCH_*.json` snapshot → one row per numeric leaf.
pub fn bench_rows(campaign: &str, text: &str) -> Result<Vec<Row>, String> {
    let date = extract_str(text, "date").unwrap_or_else(|| "undated".to_string());
    let config = format!("{:016x}", fnv1a64(text.as_bytes()));
    let run = format!("bench-{date}");
    let flat = flatten_numbers(text.trim())?;
    Ok(flat
        .into_iter()
        .map(|(path, value)| {
            let mut r = Row::new(campaign, &run, "bench", &config);
            r.metric = path;
            r.series = date.clone();
            r.value = value;
            r
        })
        .collect())
}

/// A `hetsched serve` event log → one row per line. The config key is
/// the content hash of the whole log, so ingest a log once, after
/// `drain` — a longer log from the same daemon hashes to a new key.
pub fn serve_log_rows(campaign: &str, text: &str) -> Result<Vec<Row>, String> {
    let config = format!("{:016x}", fnv1a64(text.as_bytes()));
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = extract_str(line, "event")
            .ok_or_else(|| format!("serve log line {}: no \"event\" field in {line:?}", i + 1))?;
        let run = match extract_u64(line, "job") {
            Some(id) => format!("job-{id}"),
            None => "daemon".to_string(),
        };
        let mut r = Row::new(campaign, &run, "serve", &config);
        r.metric = event.clone();
        r.t = i as f64;
        r.value = extract_num(line, "makespan_mean").unwrap_or(f64::NAN);
        if let Some(name) = extract_str(line, "name") {
            r.series = name;
        }
        rows.push(r);
        if event == "done" {
            for field in ["total_blocks_mean", "normalized_comm_mean"] {
                if let Some(v) = extract_num(line, field) {
                    let mut extra = Row::new(campaign, &run, "serve", &config);
                    extra.metric = format!("done.{field}");
                    extra.t = i as f64;
                    extra.value = v;
                    rows.push(extra);
                }
            }
        }
    }
    Ok(rows)
}

fn parse_u64_array(line: &str, key: &str) -> Vec<u64> {
    match extract_object(line, key) {
        Some(arr) => arr[1..arr.len() - 1]
            .split(',')
            .filter(|s| !s.is_empty())
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        None => Vec::new(),
    }
}

fn parse_f64_array(line: &str, key: &str) -> Vec<f64> {
    match extract_object(line, key) {
        Some(arr) => arr[1..arr.len() - 1]
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.trim().parse().unwrap_or(f64::NAN))
            .collect(),
        None => Vec::new(),
    }
}

/// A JSONL trace (manifest line, event lines, probe lines) → probe rows
/// plus per-event-kind count rows. The run key comes from the embedded
/// manifest: seed from its `seed` field, config from hashing its
/// `config` object — which is the same `config_json` rendering the
/// in-process ingests hash, so a re-ingested trace lands under the same
/// config key as the run that wrote it.
pub fn trace_jsonl_rows(campaign: &str, text: &str) -> Result<Vec<Row>, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let first = lines.next().ok_or_else(|| "empty trace file".to_string())?;
    if !first.starts_with("{\"type\":\"manifest\"") {
        return Err(
            "trace JSONL must start with its manifest line; was this trace written by \
             --trace-format jsonl?"
                .to_string(),
        );
    }
    let seed =
        extract_u64(first, "seed").ok_or_else(|| "trace manifest has no seed".to_string())?;
    let config_obj = extract_object(first, "config")
        .ok_or_else(|| "trace manifest has no config object".to_string())?;
    let config = format!("{:016x}", fnv1a64(config_obj.as_bytes()));
    let strategy = extract_str(config_obj, "strategy").unwrap_or_default();
    let key = RunKey {
        campaign: campaign.to_string(),
        run: format!("trace-{seed:x}"),
        seed,
        config,
    };

    let mut rows = Vec::new();
    let mut manifest_row = keyed(&key, "trace", &strategy);
    manifest_row.metric = "manifest".to_string();
    manifest_row.value = 1.0;
    rows.push(manifest_row);

    let mut event_counts: std::collections::BTreeMap<String, u64> = Default::default();
    let mut max_t = f64::NAN;
    for line in lines {
        if line.starts_with("{\"type\":\"probe\"") {
            let blocks = parse_u64_array(line, "blocks");
            let tasks = parse_u64_array(line, "tasks");
            let useful = parse_f64_array(line, "useful");
            for (w, &wb) in blocks.iter().enumerate() {
                let mut r = keyed(&key, "probe", &strategy);
                r.metric = "sample".to_string();
                r.worker = w as i64;
                r.t = extract_num(line, "t").unwrap_or(f64::NAN);
                r.events = extract_u64(line, "events").unwrap_or(0);
                r.remaining = extract_u64(line, "remaining").unwrap_or(0);
                r.blocks = wb;
                r.tasks = *tasks.get(w).unwrap_or(&0);
                r.useful = *useful.get(w).unwrap_or(&f64::NAN);
                r.link_busy = extract_num(line, "link_busy").unwrap_or(f64::NAN);
                r.queue_depth = extract_u64(line, "queue_depth").unwrap_or(0);
                rows.push(r);
            }
        } else if line.starts_with("{\"type\":\"event\"") {
            let kind = extract_str(line, "kind").unwrap_or_else(|| "unknown".to_string());
            *event_counts.entry(kind).or_insert(0) += 1;
            if let Some(t) = extract_num(line, "t") {
                max_t = if max_t.is_nan() { t } else { max_t.max(t) };
            }
        } else {
            return Err(format!("unrecognized trace line: {line:?}"));
        }
    }
    for (kind, count) in event_counts {
        let mut r = keyed(&key, "trace", &strategy);
        r.metric = format!("events.{kind}");
        r.value = count as f64;
        r.t = max_t;
        rows.push(r);
    }
    Ok(rows)
}

/// What one text artifact looks like, and the rows it maps to. This is
/// the `hetsched ingest` entry point: detection by shape, not by file
/// name.
pub fn rows_for_text(campaign: &str, text: &str) -> Result<(Vec<Row>, &'static str), String> {
    let first = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
    if first.starts_with("{\"type\":\"manifest\"") {
        return Ok((trace_jsonl_rows(campaign, text)?, "trace"));
    }
    if first.starts_with('[') {
        return Err(
            "this looks like a Chrome trace; only JSONL traces are ingestible — re-render \
             with --trace-format jsonl"
                .to_string(),
        );
    }
    if first == "figure,series,x,mean,std_dev" {
        return Ok((figure_csv_rows(campaign, text)?, "figure"));
    }
    if first.starts_with('{') && extract_str(first, "event").is_some() {
        return Ok((serve_log_rows(campaign, text)?, "serve"));
    }
    if first.starts_with('{') {
        // A `BENCH_*.json` snapshot is one pretty-printed object, so its
        // `"date"` field sits a line or two below the opening brace.
        let head: Vec<&str> = text.lines().take(5).collect();
        if extract_str(&head.join("\n"), "date").is_some() {
            return Ok((bench_rows(campaign, text)?, "bench"));
        }
    }
    Err(
        "unrecognized artifact: expected a JSONL trace (manifest first line), a figure CSV \
         (figure,series,x,mean,std_dev header), a serve event log, or a BENCH_*.json snapshot"
            .to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_core::{run_once, Kernel, Strategy};
    use hetsched_sim::ProbeConfig;

    fn cfg() -> ExperimentConfig {
        let c = ExperimentConfig {
            kernel: Kernel::Outer { n: 20 },
            strategy: Strategy::Dynamic,
            processors: 4,
            ..Default::default()
        };
        c.validate().unwrap();
        c
    }

    #[test]
    fn config_hash_is_seed_independent_and_strategy_sensitive() {
        let c = cfg();
        assert_eq!(config_hash(&c), config_hash(&c));
        assert_eq!(config_hash(&c).len(), 16);
        let mut other = cfg();
        other.strategy = Strategy::Random;
        assert_ne!(config_hash(&c), config_hash(&other));
    }

    #[test]
    fn report_rows_carry_trial_metrics_and_workers() {
        let c = cfg();
        let r = run_once(&c, 7);
        let key = RunKey::new("camp", "run", 7, &c);
        let rows = report_rows(&key, c.strategy.label(c.kernel), 0, 7, &r);
        let makespan = rows.iter().find(|row| row.metric == "makespan").unwrap();
        assert_eq!(makespan.value, r.makespan);
        assert_eq!(makespan.kind, "report");
        let workers = rows
            .iter()
            .filter(|row| row.metric == "worker_blocks")
            .count();
        assert_eq!(workers, 4);
        assert!(rows.iter().all(|row| row.config == key.config));
    }

    #[test]
    fn probe_rows_expand_per_worker() {
        let c = cfg();
        let obs = hetsched_core::run_once_observed(&c, 7, ProbeConfig::by_events(8));
        let key = RunKey::new("camp", "run", 7, &c);
        let rows = probe_rows(&key, "d", f64::NAN, &obs.probes);
        assert_eq!(rows.len(), obs.probes.len() * 4);
        let last = obs.probes.last().unwrap();
        let tail = &rows[rows.len() - 4..];
        for (w, row) in tail.iter().enumerate() {
            assert_eq!(row.worker, w as i64);
            assert_eq!(row.blocks, last.blocks_per_proc[w]);
            assert_eq!(row.t, last.time);
        }
    }

    #[test]
    fn trace_round_trip_reproduces_probe_rows() {
        // A rendered JSONL trace re-ingests to the same probe rows the
        // in-process path produces (per-f64-bit, via the sink's
        // shortest-round-trip float formatting).
        let c = cfg();
        let obs = hetsched_core::run_once_observed(&c, 7, ProbeConfig::by_events(8));
        let text = hetsched_core::render_trace(
            &c,
            7,
            ProbeConfig::by_events(8),
            hetsched_core::TraceFormat::Jsonl,
        );
        let rows = trace_jsonl_rows("camp", &text).unwrap();
        // Config key matches the in-process hash.
        assert!(rows.iter().all(|r| r.config == config_hash(&c)));
        assert!(rows.iter().all(|r| r.run == "trace-7"));
        let probe: Vec<&Row> = rows.iter().filter(|r| r.kind == "probe").collect();
        let direct = probe_rows(
            &RunKey::new("camp", "trace-7", 7, &c),
            c.strategy.label(c.kernel),
            f64::NAN,
            &obs.probes,
        );
        assert_eq!(probe.len(), direct.len());
        for (a, b) in probe.iter().zip(&direct) {
            assert_eq!(a.worker, b.worker);
            assert_eq!(a.blocks, b.blocks);
            assert_eq!(a.tasks, b.tasks);
            assert_eq!(a.t.to_bits(), b.t.to_bits(), "t mismatch");
            assert_eq!(a.events, b.events);
        }
        // Event counts cover the run's allocations.
        assert!(rows
            .iter()
            .any(|r| r.kind == "trace" && r.metric.starts_with("events.")));
    }

    #[test]
    fn figure_csv_rows_parse_and_reject() {
        let csv = "figure,series,x,mean,std_dev\nfig2,Random,10,1.5,0.1\nfig2,Dynamic,10,1.2,0\n";
        let rows = figure_csv_rows("figs", csv).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].run, "fig2");
        assert_eq!(rows[0].series, "Random");
        assert_eq!(rows[0].t, 10.0);
        assert_eq!(rows[1].value, 1.2);
        assert!(figure_csv_rows("figs", "wrong,header\n1,2\n").is_err());
        assert!(figure_csv_rows("figs", "figure,series,x,mean,std_dev\na,b,xx,1,2\n").is_err());
    }

    #[test]
    fn serve_log_rows_key_jobs_and_surface_done_metrics() {
        let log = concat!(
            "{\"event\":\"daemon_start\",\"policy\":\"fifo\"}\n",
            "{\"event\":\"submitted\",\"job\":1,\"name\":\"a\"}\n",
            "{\"event\":\"done\",\"job\":1,\"makespan_mean\":2.5,\"total_blocks_mean\":100,\"normalized_comm_mean\":1.1}\n",
        );
        let rows = serve_log_rows("serve", log).unwrap();
        assert_eq!(rows[0].run, "daemon");
        assert_eq!(rows[1].run, "job-1");
        assert_eq!(rows[1].series, "a");
        let done = rows.iter().find(|r| r.metric == "done").unwrap();
        assert_eq!(done.value, 2.5);
        assert!(rows
            .iter()
            .any(|r| r.metric == "done.total_blocks_mean" && r.value == 100.0));
        assert!(serve_log_rows("serve", "{\"no_event\":1}\n").is_err());
    }

    #[test]
    fn bench_rows_flatten_snapshot() {
        let text = "{\"date\":\"2026-08-08\",\"engine_requests_per_sec\":1e6,\"nested\":{\"a\":2}}";
        let rows = bench_rows("bench", text).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].run, "bench-2026-08-08");
        assert_eq!(rows[0].series, "2026-08-08");
        assert_eq!(rows[0].metric, "engine_requests_per_sec");
        assert_eq!(rows[1].metric, "nested.a");
    }

    #[test]
    fn rows_for_text_detects_each_shape() {
        let c = cfg();
        let trace = hetsched_core::render_trace(
            &c,
            3,
            ProbeConfig::disabled(),
            hetsched_core::TraceFormat::Jsonl,
        );
        assert_eq!(rows_for_text("x", &trace).unwrap().1, "trace");
        assert_eq!(
            rows_for_text("x", "figure,series,x,mean,std_dev\n")
                .unwrap()
                .1,
            "figure"
        );
        assert_eq!(
            rows_for_text("x", "{\"event\":\"daemon_start\"}\n")
                .unwrap()
                .1,
            "serve"
        );
        assert_eq!(
            rows_for_text("x", "{\"date\":\"2026-01-01\",\"v\":1}")
                .unwrap()
                .1,
            "bench"
        );
        let chrome = rows_for_text("x", "[{\"name\":\"a\"}]").unwrap_err();
        assert!(chrome.contains("Chrome trace"), "{chrome}");
        let err = rows_for_text("x", "plain text").unwrap_err();
        assert!(err.contains("unrecognized artifact"), "{err}");
    }
}
