//! LEB128 varints and zigzag mapping — the integer wire format of every
//! column chunk.
//!
//! Cumulative counters (blocks, tasks, events) are stored as deltas
//! between consecutive rows, echoing the `ProbeConfig` delta machinery in
//! `hetsched-sim`: within one run the deltas are small and often zero, so
//! zigzag + LEB128 collapses most of them to a single byte.

/// Maps a signed delta onto the unsigned varint space so small negatives
/// stay short: 0, -1, 1, -2, … → 0, 1, 2, 3, …
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit = more).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one varint at `*pos`, advancing it. Errors on truncation or a
/// varint longer than 10 bytes (more than 64 payload bits).
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| format!("truncated varint at byte {}", *pos))?;
        *pos += 1;
        if shift >= 64 {
            return Err(format!("varint overflows 64 bits at byte {}", *pos));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 127);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn truncated_varint_is_an_error() {
        let buf = [0x80u8, 0x80];
        let mut pos = 0;
        assert!(get_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn overlong_varint_is_an_error() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(get_varint(&buf, &mut pos).is_err());
    }
}
