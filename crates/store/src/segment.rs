//! Segment files: the on-disk unit of the warehouse.
//!
//! One segment holds one ingest batch, laid out column-major:
//!
//! ```text
//! "HSCS"                                      4-byte magic
//! chunk 0: col 0 bytes, col 1 bytes, …        encoded per column.rs
//! chunk 1: …                                  (65 536 rows per chunk)
//! footer                                       varint-encoded, see below
//! footer length                                u64 little-endian
//! "HSCF"                                      4-byte trailing magic
//! ```
//!
//! The footer carries the column index (names + types, validated against
//! the compiled-in schema on open), per-chunk row counts and per-column
//! byte ranges, min/max zone maps for numeric columns, the batch's run
//! keys (for ingest dedupe without scanning rows), and the total row
//! count. Readers parse the footer, then decode only the chunk/column
//! ranges a query actually touches.

use std::path::Path;

use crate::column::{
    decode_f64, decode_i64, decode_str, decode_u64, encode_f64, encode_i64, encode_str, encode_u64,
    zone_of, ColumnData,
};
use crate::schema::{ColumnType, Row, Value, COLUMNS};
use crate::varint::{get_varint, put_varint};

/// Rows per chunk. Large enough to amortize dictionaries, small enough
/// that zone maps prune usefully within big batches.
pub const CHUNK_ROWS: usize = 65_536;

const MAGIC_HEAD: &[u8; 4] = b"HSCS";
const MAGIC_TAIL: &[u8; 4] = b"HSCF";

/// Byte range + zone map of one column within one chunk.
#[derive(Clone, Debug)]
pub struct ChunkColMeta {
    pub offset: usize,
    pub len: usize,
    /// `(min, max)` over finite values; `None` for strings and all-NaN
    /// chunks.
    pub zone: Option<(f64, f64)>,
}

/// Per-chunk footer entry.
#[derive(Clone, Debug)]
pub struct ChunkMeta {
    pub rows: usize,
    pub cols: Vec<ChunkColMeta>,
}

/// Parsed segment footer.
#[derive(Clone, Debug)]
pub struct SegmentMeta {
    pub chunks: Vec<ChunkMeta>,
    /// `campaign \u{1f} run \u{1f} config` strings, one per ingested run.
    pub run_keys: Vec<String>,
    pub total_rows: usize,
}

/// Encodes `rows` (plus the batch's run keys) into segment-file bytes.
pub fn encode_segment(rows: &[Row], run_keys: &[String]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_HEAD);
    let mut chunks = Vec::new();
    for chunk_rows in rows.chunks(CHUNK_ROWS) {
        let mut cols = Vec::with_capacity(COLUMNS.len());
        for (col_idx, (_, ty)) in COLUMNS.iter().enumerate() {
            let offset = out.len();
            let zone = match ty {
                ColumnType::Str => {
                    let values: Vec<String> = chunk_rows
                        .iter()
                        .map(|r| match r.get(col_idx) {
                            Value::Str(s) => s,
                            _ => unreachable!(),
                        })
                        .collect();
                    out.extend_from_slice(&encode_str(&values));
                    None
                }
                ColumnType::U64 => {
                    let values: Vec<u64> = chunk_rows
                        .iter()
                        .map(|r| match r.get(col_idx) {
                            Value::U64(v) => v,
                            _ => unreachable!(),
                        })
                        .collect();
                    out.extend_from_slice(&encode_u64(&values));
                    zone_of(values.iter().map(|&v| v as f64))
                }
                ColumnType::I64 => {
                    let values: Vec<i64> = chunk_rows
                        .iter()
                        .map(|r| match r.get(col_idx) {
                            Value::I64(v) => v,
                            _ => unreachable!(),
                        })
                        .collect();
                    out.extend_from_slice(&encode_i64(&values));
                    zone_of(values.iter().map(|&v| v as f64))
                }
                ColumnType::F64 => {
                    let values: Vec<f64> = chunk_rows
                        .iter()
                        .map(|r| match r.get(col_idx) {
                            Value::F64(v) => v,
                            _ => unreachable!(),
                        })
                        .collect();
                    out.extend_from_slice(&encode_f64(&values));
                    zone_of(values.iter().copied())
                }
            };
            cols.push(ChunkColMeta {
                offset,
                len: out.len() - offset,
                zone,
            });
        }
        chunks.push(ChunkMeta {
            rows: chunk_rows.len(),
            cols,
        });
    }

    let mut footer = Vec::new();
    put_varint(&mut footer, COLUMNS.len() as u64);
    for (name, ty) in COLUMNS {
        put_varint(&mut footer, name.len() as u64);
        footer.extend_from_slice(name.as_bytes());
        footer.push(match ty {
            ColumnType::Str => 0,
            ColumnType::U64 => 1,
            ColumnType::I64 => 2,
            ColumnType::F64 => 3,
        });
    }
    put_varint(&mut footer, chunks.len() as u64);
    for chunk in &chunks {
        put_varint(&mut footer, chunk.rows as u64);
        for col in &chunk.cols {
            put_varint(&mut footer, col.offset as u64);
            put_varint(&mut footer, col.len as u64);
            match col.zone {
                Some((lo, hi)) => {
                    footer.push(1);
                    footer.extend_from_slice(&lo.to_bits().to_le_bytes());
                    footer.extend_from_slice(&hi.to_bits().to_le_bytes());
                }
                None => footer.push(0),
            }
        }
    }
    put_varint(&mut footer, run_keys.len() as u64);
    for key in run_keys {
        put_varint(&mut footer, key.len() as u64);
        footer.extend_from_slice(key.as_bytes());
    }
    put_varint(&mut footer, rows.len() as u64);

    let footer_len = footer.len() as u64;
    out.extend_from_slice(&footer);
    out.extend_from_slice(&footer_len.to_le_bytes());
    out.extend_from_slice(MAGIC_TAIL);
    out
}

/// An open segment: the full file in memory plus its parsed footer.
/// Chunk columns are decoded on demand.
#[derive(Debug)]
pub struct Segment {
    data: Vec<u8>,
    pub meta: SegmentMeta,
    pub path: std::path::PathBuf,
}

impl Segment {
    pub fn open(path: &Path) -> Result<Segment, String> {
        Self::open_if_present(path)?
            .ok_or_else(|| format!("cannot read segment {}: file not found", path.display()))
    }

    /// Like [`Segment::open`], but a missing file is `Ok(None)` instead of
    /// an error. Readers racing a concurrent compaction (which removes
    /// merged-away segments after writing their replacement) use this to
    /// skip segments that vanish between the directory listing and the
    /// read.
    pub fn open_if_present(path: &Path) -> Result<Option<Segment>, String> {
        let data = match std::fs::read(path) {
            Ok(data) => data,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read segment {}: {e}", path.display())),
        };
        let meta =
            parse_footer(&data).map_err(|e| format!("corrupt segment {}: {e}", path.display()))?;
        Ok(Some(Segment {
            data,
            meta,
            path: path.to_path_buf(),
        }))
    }

    /// Parses only the footer of a segment file — enough for run-key
    /// dedupe checks without decoding any rows. Reads just the trailer
    /// and footer bytes (three small reads), not the row data, so a
    /// store of many large segments pays footer-sized I/O per file.
    pub fn read_meta(path: &Path) -> Result<SegmentMeta, String> {
        Self::read_meta_if_present(path)?
            .ok_or_else(|| format!("cannot read segment {}: file not found", path.display()))
    }

    /// Footer-only read with the same missing-file tolerance as
    /// [`Segment::open_if_present`].
    pub fn read_meta_if_present(path: &Path) -> Result<Option<SegmentMeta>, String> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read segment {}: {e}", path.display())),
        };
        let read_err = |e| format!("cannot read segment {}: {e}", path.display());
        let corrupt = |msg: &str| format!("corrupt segment {}: {msg}", path.display());
        let file_len = file.metadata().map_err(read_err)?.len();
        if (file_len as usize) < MAGIC_HEAD.len() + 8 + MAGIC_TAIL.len() {
            return Err(corrupt("file shorter than magic + footer trailer"));
        }
        let mut head = [0u8; 4];
        file.read_exact(&mut head).map_err(read_err)?;
        if &head != MAGIC_HEAD {
            return Err(corrupt("bad header magic (not an hsc segment)"));
        }
        let mut trailer = [0u8; 12];
        file.seek(SeekFrom::End(-12)).map_err(read_err)?;
        file.read_exact(&mut trailer).map_err(read_err)?;
        if &trailer[8..] != MAGIC_TAIL {
            return Err(corrupt("bad trailing magic (truncated write?)"));
        }
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&trailer[..8]);
        let footer_len = u64::from_le_bytes(len_bytes);
        let footer_start = (file_len - 12)
            .checked_sub(footer_len)
            .ok_or_else(|| corrupt("footer length exceeds file size"))?;
        let mut footer = vec![0u8; footer_len as usize];
        file.seek(SeekFrom::Start(footer_start)).map_err(read_err)?;
        file.read_exact(&mut footer).map_err(read_err)?;
        parse_footer_body(&footer)
            .map(Some)
            .map_err(|e| corrupt(&e))
    }

    /// Decodes every row of the segment, in chunk/row order — the
    /// compaction path's source of truth when rewriting small segments.
    pub fn rows(&self) -> Result<Vec<Row>, String> {
        let mut out = Vec::with_capacity(self.meta.total_rows);
        for chunk_idx in 0..self.meta.chunks.len() {
            let cols: Vec<ColumnData> = (0..COLUMNS.len())
                .map(|c| self.read_chunk_column(chunk_idx, c))
                .collect::<Result<_, _>>()?;
            for i in 0..self.meta.chunks[chunk_idx].rows {
                let values: Vec<Value> = cols.iter().map(|c| c.value(i)).collect();
                out.push(Row::from_values(&values)?);
            }
        }
        Ok(out)
    }

    /// Raw bytes of column `col_idx` in chunk `chunk_idx`.
    pub fn chunk_col_bytes(&self, chunk_idx: usize, col_idx: usize) -> Result<&[u8], String> {
        let col = &self.meta.chunks[chunk_idx].cols[col_idx];
        self.data
            .get(col.offset..col.offset + col.len)
            .ok_or_else(|| "chunk byte range out of file bounds".to_string())
    }

    /// Decodes column `col_idx` of chunk `chunk_idx`.
    pub fn read_chunk_column(
        &self,
        chunk_idx: usize,
        col_idx: usize,
    ) -> Result<ColumnData, String> {
        let bytes = self.chunk_col_bytes(chunk_idx, col_idx)?;
        let data = match COLUMNS[col_idx].1 {
            ColumnType::Str => ColumnData::Str(decode_str(bytes)?),
            ColumnType::U64 => ColumnData::U64(decode_u64(bytes)?),
            ColumnType::I64 => ColumnData::I64(decode_i64(bytes)?),
            ColumnType::F64 => ColumnData::F64(decode_f64(bytes)?),
        };
        if data.len() != self.meta.chunks[chunk_idx].rows {
            return Err(format!(
                "chunk {chunk_idx} column {} decoded {} rows, footer says {}",
                COLUMNS[col_idx].0,
                data.len(),
                self.meta.chunks[chunk_idx].rows
            ));
        }
        Ok(data)
    }
}

fn parse_footer(data: &[u8]) -> Result<SegmentMeta, String> {
    if data.len() < MAGIC_HEAD.len() + 8 + MAGIC_TAIL.len() {
        return Err("file shorter than magic + footer trailer".to_string());
    }
    if &data[..4] != MAGIC_HEAD {
        return Err("bad header magic (not an hsc segment)".to_string());
    }
    if &data[data.len() - 4..] != MAGIC_TAIL {
        return Err("bad trailing magic (truncated write?)".to_string());
    }
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&data[data.len() - 12..data.len() - 4]);
    let footer_len = u64::from_le_bytes(len_bytes) as usize;
    let footer_end = data.len() - 12;
    let footer_start = footer_end
        .checked_sub(footer_len)
        .ok_or_else(|| "footer length exceeds file size".to_string())?;
    parse_footer_body(&data[footer_start..footer_end])
}

/// Parses the footer bytes themselves (column index, chunk table, run
/// keys, row total) — shared by the whole-file and footer-only readers.
fn parse_footer_body(footer: &[u8]) -> Result<SegmentMeta, String> {
    let mut pos = 0;
    let ncols = get_varint(footer, &mut pos)? as usize;
    if ncols != COLUMNS.len() {
        return Err(format!(
            "segment has {ncols} columns, this build expects {}",
            COLUMNS.len()
        ));
    }
    for (name, ty) in COLUMNS {
        let len = get_varint(footer, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= footer.len())
            .ok_or_else(|| "truncated column name".to_string())?;
        let got = std::str::from_utf8(&footer[pos..end])
            .map_err(|e| format!("non-UTF-8 column name: {e}"))?;
        pos = end;
        let ty_byte = *footer
            .get(pos)
            .ok_or_else(|| "truncated column type".to_string())?;
        pos += 1;
        let want_ty = match ty {
            ColumnType::Str => 0,
            ColumnType::U64 => 1,
            ColumnType::I64 => 2,
            ColumnType::F64 => 3,
        };
        if got != *name || ty_byte != want_ty {
            return Err(format!(
                "column mismatch: segment has {got:?}/type {ty_byte}, schema wants {name:?}"
            ));
        }
    }

    let nchunks = get_varint(footer, &mut pos)? as usize;
    let mut chunks = Vec::with_capacity(nchunks);
    let mut total = 0usize;
    for _ in 0..nchunks {
        let rows = get_varint(footer, &mut pos)? as usize;
        total += rows;
        let mut cols = Vec::with_capacity(COLUMNS.len());
        for _ in COLUMNS {
            let offset = get_varint(footer, &mut pos)? as usize;
            let len = get_varint(footer, &mut pos)? as usize;
            let has_zone = *footer
                .get(pos)
                .ok_or_else(|| "truncated zone flag".to_string())?;
            pos += 1;
            let zone = if has_zone == 1 {
                let end = pos
                    .checked_add(16)
                    .filter(|&e| e <= footer.len())
                    .ok_or_else(|| "truncated zone map".to_string())?;
                let mut lo = [0u8; 8];
                let mut hi = [0u8; 8];
                lo.copy_from_slice(&footer[pos..pos + 8]);
                hi.copy_from_slice(&footer[pos + 8..end]);
                pos = end;
                Some((
                    f64::from_bits(u64::from_le_bytes(lo)),
                    f64::from_bits(u64::from_le_bytes(hi)),
                ))
            } else {
                None
            };
            cols.push(ChunkColMeta { offset, len, zone });
        }
        chunks.push(ChunkMeta { rows, cols });
    }

    let nkeys = get_varint(footer, &mut pos)? as usize;
    let mut run_keys = Vec::with_capacity(nkeys);
    for _ in 0..nkeys {
        let len = get_varint(footer, &mut pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= footer.len())
            .ok_or_else(|| "truncated run key".to_string())?;
        run_keys.push(
            std::str::from_utf8(&footer[pos..end])
                .map_err(|e| format!("non-UTF-8 run key: {e}"))?
                .to_string(),
        );
        pos = end;
    }
    let total_rows = get_varint(footer, &mut pos)? as usize;
    if total_rows != total {
        return Err(format!(
            "footer total {total_rows} != sum of chunk rows {total}"
        ));
    }
    Ok(SegmentMeta {
        chunks,
        run_keys,
        total_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                let mut r = Row::new("camp", "run-1", "probe", "deadbeefdeadbeef");
                r.seed = 42 + i as u64;
                r.worker = (i % 4) as i64;
                r.events = (i * 10) as u64;
                r.t = i as f64 * 0.5;
                r.value = if i % 7 == 0 { f64::NAN } else { i as f64 };
                r.metric = if i % 2 == 0 {
                    "sample".into()
                } else {
                    "other".into()
                };
                r
            })
            .collect()
    }

    fn write_tmp(bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hsc-seg-test-{}-{}",
            std::process::id(),
            bytes.len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.hsc");
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn segment_round_trips_rows_and_keys() {
        let rows = sample_rows(100);
        let keys = vec!["camp\u{1f}run-1\u{1f}deadbeefdeadbeef".to_string()];
        let bytes = encode_segment(&rows, &keys);
        let path = write_tmp(&bytes);
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.meta.total_rows, 100);
        assert_eq!(seg.meta.chunks.len(), 1);
        assert_eq!(seg.meta.run_keys, keys);
        for col_idx in 0..COLUMNS.len() {
            let data = seg.read_chunk_column(0, col_idx).unwrap();
            assert_eq!(data.len(), 100);
            for (i, row) in rows.iter().enumerate() {
                let want = row.get(col_idx);
                let got = data.value(i);
                match (&want, &got) {
                    (Value::F64(a), Value::F64(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                    _ => assert_eq!(want, got, "col {col_idx} row {i}"),
                }
            }
        }
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn multi_chunk_segments_split_at_chunk_rows() {
        let rows = sample_rows(CHUNK_ROWS + 10);
        let bytes = encode_segment(&rows, &[]);
        let path = write_tmp(&bytes);
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.meta.chunks.len(), 2);
        assert_eq!(seg.meta.chunks[0].rows, CHUNK_ROWS);
        assert_eq!(seg.meta.chunks[1].rows, 10);
        assert_eq!(seg.meta.total_rows, CHUNK_ROWS + 10);
        let t = seg.read_chunk_column(1, 14).unwrap();
        assert_eq!(t.value(9), Value::F64((CHUNK_ROWS + 9) as f64 * 0.5));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn zone_maps_cover_numeric_columns() {
        let rows = sample_rows(50);
        let bytes = encode_segment(&rows, &[]);
        let path = write_tmp(&bytes);
        let seg = Segment::open(&path).unwrap();
        let chunk = &seg.meta.chunks[0];
        // seed column: 42..=91.
        assert_eq!(chunk.cols[7].zone, Some((42.0, 91.0)));
        // strings carry no zone.
        assert_eq!(chunk.cols[0].zone, None);
        // value column: NaNs excluded, min is 1.0 (i=0 is NaN).
        let (lo, hi) = chunk.cols[15].zone.unwrap();
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 48.0);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_files_error_cleanly() {
        let rows = sample_rows(5);
        let bytes = encode_segment(&rows, &[]);
        // Truncated file.
        let path = write_tmp(&bytes[..bytes.len() - 3]);
        let err = Segment::open(&path).unwrap_err();
        assert!(err.contains("corrupt segment"), "{err}");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
        // Wrong magic.
        let mut garbled = bytes.clone();
        garbled[0] = b'X';
        let path = write_tmp(&garbled);
        let err = Segment::open(&path).unwrap_err();
        assert!(err.contains("not an hsc segment"), "{err}");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }
}
