//! `hetsched-store`: an embedded columnar warehouse for whole campaigns.
//!
//! Every artifact the workspace produces — probe series, `SimReport`/run
//! ledgers, figure CSVs, `BENCH_*.json` snapshots, `hetsched serve` event
//! logs, JSONL traces — lands in one wide table keyed by `(campaign, run,
//! config-hash, seed)`, stored as immutable segment files of per-column
//! chunks:
//!
//! * cumulative counters are delta + zigzag + LEB128-varint encoded
//!   (the `ProbeConfig` delta idea, applied at rest);
//! * strings are chunk-local dictionary encoded;
//! * floats are raw little-endian bits, so `value` round-trips exactly;
//! * every segment footer carries a column index, row counts, min/max
//!   zone maps (chunk pruning) and the batch's run keys (replay-safe
//!   dedupe without decoding a single row).
//!
//! On top sits a small query engine (`--select` / `--where` /
//! `--group-by` / `--agg`, CSV or JSONL out) and the canned
//! [`stats_report`]. No dependencies beyond the workspace's own crates;
//! no background process — a store is a directory, a reader is `open` +
//! scan.
//!
//! ```text
//! simulate --store runs/   figures --store runs/   serve --store runs/
//!         \__________________    |    _____________________/
//!                            v   v   v
//!                   runs/seg-<fnv64>.hsc   (columnar, immutable)
//!                            |
//!          hetsched query --where kind=report --group-by strategy ...
//!          hetsched stats
//! ```

pub mod column;
pub mod ingest;
pub mod json;
pub mod query;
pub mod schema;
pub mod segment;
pub mod stats;
pub mod store;
pub mod varint;

pub use ingest::{
    bench_rows, config_hash, figure_csv_rows, probe_rows, report_rows, rows_for_text,
    serve_log_rows, sim_run_id, summary_rows, trace_jsonl_rows, RunKey,
};
pub use query::{build_query, run_query, run_query_with, Query, QueryResult};
pub use schema::{column_index, ColumnType, Row, Value, COLUMNS};
pub use segment::{Segment, SegmentMeta, CHUNK_ROWS};
pub use stats::{stats_report, stats_report_with};
pub use store::{fnv1a64, run_key, CompactReport, IngestBatch, Store};
