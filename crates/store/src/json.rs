//! Minimal JSON readers for the ingest layer.
//!
//! Every artifact this workspace writes is hand-assembled single-line
//! JSON (manifests, probe JSONL, serve event logs, `BENCH_*.json`), so
//! ingest only needs three things: pull one string or number field out of
//! a line, slice out one balanced `{...}` sub-object, and flatten a whole
//! document's numeric leaves into dotted paths. No tree is ever built.

/// Index just past `"key":` in `line`, with any whitespace after the
/// colon skipped — our writers emit compact JSON, but `BENCH_*.json`
/// snapshots are pretty-printed.
fn after_key(line: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\":");
    let mut start = line.find(&needle)? + needle.len();
    let bytes = line.as_bytes();
    while matches!(bytes.get(start), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        start += 1;
    }
    Some(start)
}

/// The raw (still escaped) value of `"key":"..."` in `line`.
fn raw_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = after_key(line, key)?;
    let bytes = line.as_bytes();
    if bytes.get(start) != Some(&b'"') {
        return None;
    }
    let start = start + 1;
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(&line[start..i]),
            _ => i += 1,
        }
    }
    None
}

/// Unescapes the subset of JSON escapes our writers emit.
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Value of `"key":"..."` in `line`, unescaped.
pub fn extract_str(line: &str, key: &str) -> Option<String> {
    raw_str_field(line, key).map(unescape)
}

/// Value of `"key":<number>` in `line`. `null` and non-numeric values
/// yield `None`.
pub fn extract_num(line: &str, key: &str) -> Option<f64> {
    let start = after_key(line, key)?;
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Value of `"key":<integer>` in `line`.
pub fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let v = extract_num(line, key)?;
    if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
        Some(v as u64)
    } else {
        None
    }
}

/// The balanced `{...}` (or `[...]`) value of `"key":` in `line`,
/// including the brackets. String-aware: braces inside quoted values do
/// not count.
pub fn extract_object<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let start = after_key(line, key)?;
    let bytes = line.as_bytes();
    let open = *bytes.get(start)?;
    let close = match open {
        b'{' => b'}',
        b'[' => b']',
        _ => return None,
    };
    let mut depth = 0usize;
    let mut in_str = false;
    let mut i = start;
    while i < bytes.len() {
        let b = bytes[i];
        if in_str {
            match b {
                b'\\' => i += 1,
                b'"' => in_str = false,
                _ => {}
            }
        } else if b == b'"' {
            in_str = true;
        } else if b == open {
            depth += 1;
        } else if b == close {
            depth -= 1;
            if depth == 0 {
                return Some(&line[start..=i]);
            }
        }
        i += 1;
    }
    None
}

/// Flattens every numeric leaf of a JSON document into `(dotted.path,
/// value)` pairs, in document order. Array elements get their index as a
/// path segment (`fig5_threads_sweep_sec.0`). Strings, booleans and
/// nulls are skipped. This is how `BENCH_*.json` snapshots become rows.
pub fn flatten_numbers(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    walk_value(bytes, &mut pos, &mut String::new(), &mut out)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes after JSON value at offset {pos}"));
    }
    Ok(out)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn walk_value(
    bytes: &[u8],
    pos: &mut usize,
    path: &mut String,
    out: &mut Vec<(String, f64)>,
) -> Result<(), String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            loop {
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    Some(b',') => {
                        *pos += 1;
                        continue;
                    }
                    Some(b'"') => {
                        let key = parse_string(bytes, pos)?;
                        skip_ws(bytes, pos);
                        if bytes.get(*pos) != Some(&b':') {
                            return Err(format!("expected ':' at offset {pos}"));
                        }
                        *pos += 1;
                        let saved = path.len();
                        if !path.is_empty() {
                            path.push('.');
                        }
                        path.push_str(&key);
                        walk_value(bytes, pos, path, out)?;
                        path.truncate(saved);
                    }
                    _ => return Err(format!("malformed object at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut idx = 0usize;
            loop {
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    Some(b',') => {
                        *pos += 1;
                        continue;
                    }
                    Some(_) => {
                        let saved = path.len();
                        if !path.is_empty() {
                            path.push('.');
                        }
                        path.push_str(&idx.to_string());
                        walk_value(bytes, pos, path, out)?;
                        path.truncate(saved);
                        idx += 1;
                    }
                    None => return Err("unterminated array".to_string()),
                }
            }
        }
        Some(b'"') => {
            parse_string(bytes, pos)?;
            Ok(())
        }
        Some(b't') => expect_lit(bytes, pos, "true"),
        Some(b'f') => expect_lit(bytes, pos, "false"),
        Some(b'n') => expect_lit(bytes, pos, "null"),
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).unwrap_or("");
            let v: f64 = text
                .parse()
                .map_err(|_| format!("malformed number {text:?} at offset {start}"))?;
            out.push((path.clone(), v));
            Ok(())
        }
        None => Err("unexpected end of JSON".to_string()),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'\\' => *pos += 2,
            b'"' => {
                let raw = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|e| format!("non-UTF-8 string: {e}"))?;
                *pos += 1;
                return Ok(unescape(raw));
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn expect_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("malformed literal at offset {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extractors() {
        let line = r#"{"event":"done","job":3,"makespan_mean":1.25,"name":"a \"b\"","none":null}"#;
        assert_eq!(extract_str(line, "event").as_deref(), Some("done"));
        assert_eq!(extract_str(line, "name").as_deref(), Some("a \"b\""));
        assert_eq!(extract_num(line, "makespan_mean"), Some(1.25));
        assert_eq!(extract_u64(line, "job"), Some(3));
        assert_eq!(extract_num(line, "none"), None);
        assert_eq!(extract_str(line, "missing"), None);
        // Pretty-printed documents put whitespace after the colon.
        let pretty = "{\n  \"date\": \"2026-08-08\",\n  \"threads\": 4\n}";
        assert_eq!(extract_str(pretty, "date").as_deref(), Some("2026-08-08"));
        assert_eq!(extract_num(pretty, "threads"), Some(4.0));
    }

    #[test]
    fn balanced_object_extraction() {
        let line = r#"{"seed":7,"config":{"kernel":"outer","nested":{"a":"}"},"n":10},"tail":1}"#;
        let obj = extract_object(line, "config").unwrap();
        assert_eq!(obj, r#"{"kernel":"outer","nested":{"a":"}"},"n":10}"#);
        let arr_line = r#"{"xs":[1,[2,3]],"y":0}"#;
        assert_eq!(extract_object(arr_line, "xs").unwrap(), "[1,[2,3]]");
        assert_eq!(extract_object(line, "seed"), None);
    }

    #[test]
    fn flatten_walks_nested_structures() {
        let text = r#"{"date":"2026-08-08","a":{"b":1,"c":[2,3.5,{"d":-4e1}]},"skip":true,"z":null,"e":0}"#;
        let flat = flatten_numbers(text).unwrap();
        assert_eq!(
            flat,
            vec![
                ("a.b".to_string(), 1.0),
                ("a.c.0".to_string(), 2.0),
                ("a.c.1".to_string(), 3.5),
                ("a.c.2.d".to_string(), -40.0),
                ("e".to_string(), 0.0),
            ]
        );
    }

    #[test]
    fn flatten_rejects_malformed_documents() {
        assert!(flatten_numbers("{\"a\":").is_err());
        assert!(flatten_numbers("{\"a\":1} extra").is_err());
        assert!(flatten_numbers("{\"a\":bogus}").is_err());
    }
}
