//! Column chunk encodings.
//!
//! Each chunk holds one column's values for a contiguous slice of rows:
//!
//! * **Str** — chunk-local dictionary (varint count, then varint-length
//!   prefixed UTF-8 entries in first-appearance order), followed by the
//!   row count and zigzag-delta varints of dictionary indices. Campaign,
//!   run and metric names repeat across thousands of rows, so the indices
//!   delta to zero almost everywhere.
//! * **U64 / I64** — row count, then zigzag varints of wrapping deltas
//!   between consecutive values (first value deltas against 0). This is
//!   the cumulative-counter layout borrowed from the probe machinery.
//! * **F64** — row count, then raw little-endian IEEE bits per value.
//!   Floats round-trip *exactly*, which the golden round-trip test pins.
//!
//! Numeric chunks also carry a min/max zone map (NaN excluded) in the
//! segment footer so predicate scans can skip chunks wholesale; string
//! chunks are pruned by a dictionary-membership pre-pass that decodes
//! only the dict header.

use crate::varint::{get_varint, put_varint, unzigzag, zigzag};

/// Decoded values of one chunk of one column.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnData {
    Str(Vec<String>),
    U64(Vec<u64>),
    I64(Vec<i64>),
    F64(Vec<f64>),
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Str(v) => v.len(),
            ColumnData::U64(v) => v.len(),
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn value(&self, i: usize) -> crate::schema::Value {
        match self {
            ColumnData::Str(v) => crate::schema::Value::Str(v[i].clone()),
            ColumnData::U64(v) => crate::schema::Value::U64(v[i]),
            ColumnData::I64(v) => crate::schema::Value::I64(v[i]),
            ColumnData::F64(v) => crate::schema::Value::F64(v[i]),
        }
    }
}

/// Min/max over a chunk's numeric values, NaN excluded. `None` when the
/// chunk has no finite values (all-NaN float chunks keep no zone map and
/// are never pruned).
pub fn zone_of(values: impl Iterator<Item = f64>) -> Option<(f64, f64)> {
    let mut zone: Option<(f64, f64)> = None;
    for v in values {
        if v.is_nan() {
            continue;
        }
        zone = Some(match zone {
            None => (v, v),
            Some((lo, hi)) => (lo.min(v), hi.max(v)),
        });
    }
    zone
}

pub fn encode_str(values: &[String]) -> Vec<u8> {
    let mut dict: Vec<&str> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    let mut indices = Vec::with_capacity(values.len());
    for v in values {
        let idx = *index_of.entry(v.as_str()).or_insert_with(|| {
            dict.push(v.as_str());
            dict.len() - 1
        });
        indices.push(idx as i64);
    }
    let mut out = Vec::new();
    put_varint(&mut out, dict.len() as u64);
    for entry in &dict {
        put_varint(&mut out, entry.len() as u64);
        out.extend_from_slice(entry.as_bytes());
    }
    put_varint(&mut out, values.len() as u64);
    let mut prev = 0i64;
    for idx in indices {
        put_varint(&mut out, zigzag(idx.wrapping_sub(prev)));
        prev = idx;
    }
    out
}

pub fn decode_str(buf: &[u8]) -> Result<Vec<String>, String> {
    let mut pos = 0;
    let (dict, rows) = decode_str_dict(buf, &mut pos)?;
    let mut out = Vec::with_capacity(rows);
    let mut prev = 0i64;
    for _ in 0..rows {
        let delta = unzigzag(get_varint(buf, &mut pos)?);
        let idx = prev.wrapping_add(delta);
        prev = idx;
        let entry = usize::try_from(idx)
            .ok()
            .and_then(|i| dict.get(i))
            .ok_or_else(|| format!("string chunk index {idx} out of dictionary range"))?;
        out.push(entry.clone());
    }
    Ok(out)
}

/// Decodes only the dictionary header of a string chunk; used both by
/// [`decode_str`] and by the Eq-predicate membership pre-pass.
fn decode_str_dict(buf: &[u8], pos: &mut usize) -> Result<(Vec<String>, usize), String> {
    let dict_n = get_varint(buf, pos)? as usize;
    let mut dict = Vec::with_capacity(dict_n);
    for _ in 0..dict_n {
        let len = get_varint(buf, pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= buf.len())
            .ok_or_else(|| "truncated string chunk dictionary".to_string())?;
        let entry = std::str::from_utf8(&buf[*pos..end])
            .map_err(|e| format!("non-UTF-8 dictionary entry: {e}"))?;
        dict.push(entry.to_string());
        *pos = end;
    }
    let rows = get_varint(buf, pos)? as usize;
    Ok((dict, rows))
}

/// True when `needle` appears in the chunk's dictionary — i.e. an
/// `col = needle` predicate can possibly match a row here. Reads only
/// the dictionary, not the row indices.
pub fn str_chunk_contains(buf: &[u8], needle: &str) -> Result<bool, String> {
    let mut pos = 0;
    let (dict, _) = decode_str_dict(buf, &mut pos)?;
    Ok(dict.iter().any(|e| e == needle))
}

pub fn encode_u64(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, values.len() as u64);
    let mut prev = 0u64;
    for &v in values {
        put_varint(&mut out, zigzag(v.wrapping_sub(prev) as i64));
        prev = v;
    }
    out
}

pub fn decode_u64(buf: &[u8]) -> Result<Vec<u64>, String> {
    let mut pos = 0;
    let rows = get_varint(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(rows);
    let mut prev = 0u64;
    for _ in 0..rows {
        let delta = unzigzag(get_varint(buf, &mut pos)?);
        prev = prev.wrapping_add(delta as u64);
        out.push(prev);
    }
    Ok(out)
}

pub fn encode_i64(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, values.len() as u64);
    let mut prev = 0i64;
    for &v in values {
        put_varint(&mut out, zigzag(v.wrapping_sub(prev)));
        prev = v;
    }
    out
}

pub fn decode_i64(buf: &[u8]) -> Result<Vec<i64>, String> {
    let mut pos = 0;
    let rows = get_varint(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(rows);
    let mut prev = 0i64;
    for _ in 0..rows {
        prev = prev.wrapping_add(unzigzag(get_varint(buf, &mut pos)?));
        out.push(prev);
    }
    Ok(out)
}

pub fn encode_f64(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, values.len() as u64);
    for &v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

pub fn decode_f64(buf: &[u8]) -> Result<Vec<f64>, String> {
    let mut pos = 0;
    let rows = get_varint(buf, &mut pos)? as usize;
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let end = pos
            .checked_add(8)
            .filter(|&e| e <= buf.len())
            .ok_or_else(|| "truncated f64 chunk".to_string())?;
        let mut bits = [0u8; 8];
        bits.copy_from_slice(&buf[pos..end]);
        out.push(f64::from_bits(u64::from_le_bytes(bits)));
        pos = end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_round_trip_and_dict_sharing() {
        let values: Vec<String> = ["probe", "probe", "report", "probe", "", "report"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let buf = encode_str(&values);
        assert_eq!(decode_str(&buf).unwrap(), values);
        // Dictionary holds 3 distinct entries, so repeats cost ~1 byte each.
        assert!(
            buf.len() < 40,
            "dict encoding too large: {} bytes",
            buf.len()
        );
        assert!(str_chunk_contains(&buf, "report").unwrap());
        assert!(!str_chunk_contains(&buf, "figure").unwrap());
    }

    #[test]
    fn u64_round_trip_including_decreasing() {
        let values = [0u64, 1, 1, 100, 50, u64::MAX, 3];
        let buf = encode_u64(&values);
        assert_eq!(decode_u64(&buf).unwrap(), values);
    }

    #[test]
    fn u64_monotone_counters_compress() {
        // Cumulative counters advancing by small steps: ~1 byte per row.
        let values: Vec<u64> = (0..1000u64).map(|i| 5_000_000 + i * 3).collect();
        let buf = encode_u64(&values);
        assert!(buf.len() < 1100, "{} bytes for 1000 counters", buf.len());
        assert_eq!(decode_u64(&buf).unwrap(), values);
    }

    #[test]
    fn i64_round_trip() {
        let values = [-1i64, -1, 0, 7, i64::MIN, i64::MAX, -1];
        let buf = encode_i64(&values);
        assert_eq!(decode_i64(&buf).unwrap(), values);
    }

    #[test]
    fn f64_round_trip_is_exact() {
        let values = [
            0.0f64,
            -0.0,
            1.0 / 3.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            1e308,
        ];
        let buf = encode_f64(&values);
        let back = decode_f64(&buf).unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn zone_ignores_nan_and_handles_all_nan() {
        assert_eq!(
            zone_of([1.0, f64::NAN, -2.0, 5.0].into_iter()),
            Some((-2.0, 5.0))
        );
        assert_eq!(zone_of([f64::NAN, f64::NAN].into_iter()), None);
        assert_eq!(zone_of(std::iter::empty()), None);
    }

    #[test]
    fn truncated_chunks_error_cleanly() {
        let buf = encode_str(&["abc".to_string()]);
        assert!(decode_str(&buf[..buf.len() - 1]).is_err());
        let fbuf = encode_f64(&[1.0, 2.0]);
        assert!(decode_f64(&fbuf[..fbuf.len() - 1]).is_err());
    }
}
