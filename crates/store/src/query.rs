//! The query engine: projection + predicates + group-by over segments.
//!
//! Queries are compiled from the `hetsched query` flag surface:
//!
//! * `--select campaign,metric,value` — column projection;
//! * `--where "kind=report,metric=makespan,beta>=0"` — conjunctive
//!   predicates (`= != < <= > >=`; strings take `=`/`!=` only); numeric
//!   columns also take range literals, `value=2..5` (half-open) and
//!   `value=2..=5` (inclusive), which desugar to a `>=`/`<`(`<=`) pair;
//! * `--group-by strategy` + `--agg count,mean(value),p95(value)` —
//!   grouped aggregates (`count`, `mean`, `min`, `max`, `sum`, and
//!   nearest-rank `pNN` percentiles, 0 ≤ NN ≤ 100);
//! * `--limit N` — output row cap.
//!
//! Scans prune whole chunks first: numeric predicates against the footer
//! zone maps, string equality against the chunk dictionary (header-only
//! decode). Surviving chunks decode their *filter* columns first, and the
//! projected/aggregated columns only for chunks where some row matched —
//! a chunk that zone-passes but row-fails costs one column, not all.
//!
//! Chunks scan in parallel ([`run_query_with`] takes a thread count;
//! `None` means all cores). Each chunk produces a partial result —
//! per-group `(count, sum, min, max, value-buffer)` states — and partials
//! merge in (segment-name, chunk) order, so output is **byte-identical at
//! any thread count**: sums associate per chunk then across chunks in one
//! fixed order, percentile buffers concatenate in chunk order before the
//! final sort. NaN cells match no predicate and are skipped by every
//! aggregate except `count`, mirroring SQL NULL. Group keys sort with a
//! total order (NaN groups last), and ungrouped scans emit rows in
//! segment-name/chunk/row order, so output is deterministic — the golden
//! byte-stability tests in the CLI and `tests/store_parallel.rs` pin this.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use hetsched_core::runner::parallel_map;

use crate::column::{str_chunk_contains, ColumnData};
use crate::schema::{column_index, ColumnType, Value, COLUMNS};
use crate::segment::Segment;
use crate::store::Store;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Clone, Debug)]
pub enum Literal {
    Str(String),
    Num(f64),
}

#[derive(Clone, Debug)]
pub struct Filter {
    pub col: usize,
    pub op: CmpOp,
    pub literal: Literal,
}

#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AggFn {
    Count,
    Mean,
    Min,
    Max,
    Sum,
    /// Nearest-rank percentile, 0 ≤ p ≤ 100 (`p0` = min, `p100` = max).
    Percentile(f64),
}

#[derive(Clone, Debug)]
pub struct Agg {
    pub func: AggFn,
    /// Aggregated column; `None` only for `count`.
    pub col: Option<usize>,
    /// Output header label, e.g. `mean(value)`.
    pub label: String,
}

#[derive(Clone, Debug, Default)]
pub struct Query {
    /// Projected columns (ignored when aggregating).
    pub select: Vec<usize>,
    pub filters: Vec<Filter>,
    pub group_by: Vec<usize>,
    pub aggs: Vec<Agg>,
    pub limit: Option<usize>,
}

/// Compiles the CLI flag surface into a [`Query`].
pub fn build_query(
    select: Option<&str>,
    where_: Option<&str>,
    group_by: Option<&str>,
    agg: Option<&str>,
    limit: Option<usize>,
) -> Result<Query, String> {
    let mut q = Query {
        limit,
        ..Default::default()
    };
    if let Some(s) = select {
        for name in s.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            q.select.push(column_index(name)?);
        }
    }
    if let Some(s) = where_ {
        q.filters = parse_filters(s)?;
    }
    if let Some(s) = group_by {
        for name in s.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            q.group_by.push(column_index(name)?);
        }
    }
    if let Some(s) = agg {
        q.aggs = parse_aggs(s)?;
    }
    if !q.group_by.is_empty() && q.aggs.is_empty() {
        q.aggs = vec![Agg {
            func: AggFn::Count,
            col: None,
            label: "count".to_string(),
        }];
    }
    Ok(q)
}

/// Parses a comma-separated predicate list: `col op literal`, where a
/// numeric literal may be a range `lo..hi` / `lo..=hi` (with `=` only).
pub fn parse_filters(spec: &str) -> Result<Vec<Filter>, String> {
    let mut filters = Vec::new();
    for clause in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (op, op_text, split_at) = ["<=", ">=", "!=", "=", "<", ">"]
            .iter()
            .filter_map(|t| clause.find(t).map(|i| (*t, i)))
            .min_by_key(|&(t, i)| (i, std::cmp::Reverse(t.len())))
            .map(|(t, i)| {
                let op = match t {
                    "<=" => CmpOp::Le,
                    ">=" => CmpOp::Ge,
                    "!=" => CmpOp::Ne,
                    "=" => CmpOp::Eq,
                    "<" => CmpOp::Lt,
                    _ => CmpOp::Gt,
                };
                (op, t, i)
            })
            .ok_or_else(|| {
                format!(
                    "malformed predicate {clause:?}: expected <column><op><literal> with op one \
                     of = != < <= > >="
                )
            })?;
        let col_name = clause[..split_at].trim();
        let lit_text = clause[split_at + op_text.len()..].trim();
        let col = column_index(col_name)?;
        if lit_text.is_empty() {
            return Err(format!("malformed predicate {clause:?}: missing literal"));
        }
        if let Some(dots) = lit_text.find("..") {
            // Range literal: `lo..hi` selects lo ≤ x < hi, `lo..=hi`
            // selects lo ≤ x ≤ hi; desugars to two conjunctive filters so
            // zone pruning applies to both bounds.
            if COLUMNS[col].1 == ColumnType::Str {
                return Err(format!(
                    "predicate {clause:?}: range literals apply to numeric columns only \
                     ({col_name:?} is a string column)"
                ));
            }
            if op != CmpOp::Eq {
                return Err(format!(
                    "predicate {clause:?}: range literals take the form {col_name}=lo..hi or \
                     {col_name}=lo..=hi"
                ));
            }
            let lo_text = lit_text[..dots].trim();
            let rest = &lit_text[dots + 2..];
            let (hi_op, hi_text) = match rest.strip_prefix('=') {
                Some(hi) => (CmpOp::Le, hi.trim()),
                None => (CmpOp::Lt, rest.trim()),
            };
            let bound = |text: &str, side: &str| -> Result<f64, String> {
                if text.is_empty() {
                    return Err(format!(
                        "predicate {clause:?}: range literal is missing its {side} bound \
                         (expected lo..hi or lo..=hi)"
                    ));
                }
                text.parse().map_err(|_| {
                    format!("predicate {clause:?}: range {side} bound {text:?} is not a number")
                })
            };
            let lo = bound(lo_text, "lower")?;
            let hi = bound(hi_text, "upper")?;
            filters.push(Filter {
                col,
                op: CmpOp::Ge,
                literal: Literal::Num(lo),
            });
            filters.push(Filter {
                col,
                op: hi_op,
                literal: Literal::Num(hi),
            });
            continue;
        }
        let literal = match COLUMNS[col].1 {
            ColumnType::Str => {
                if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
                    return Err(format!(
                        "predicate {clause:?}: string column {col_name:?} supports only = and !="
                    ));
                }
                Literal::Str(lit_text.trim_matches('"').to_string())
            }
            _ => Literal::Num(lit_text.parse().map_err(|_| {
                format!(
                    "predicate {clause:?}: {lit_text:?} is not a number (column {col_name:?} \
                     is numeric)"
                )
            })?),
        };
        filters.push(Filter { col, op, literal });
    }
    Ok(filters)
}

/// Parses the aggregate list: `count`, `fn(col)` or `fn:col` where fn is
/// `mean|min|max|sum|pNN`.
pub fn parse_aggs(spec: &str) -> Result<Vec<Agg>, String> {
    let mut aggs = Vec::new();
    for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (fn_name, col_name) = if let Some(open) = item.find('(') {
            let close = item
                .rfind(')')
                .ok_or_else(|| format!("malformed aggregate {item:?}: missing ')'"))?;
            (&item[..open], item[open + 1..close].trim())
        } else if let Some(colon) = item.find(':') {
            (&item[..colon], item[colon + 1..].trim())
        } else {
            (item, "")
        };
        let func = match fn_name {
            "count" => AggFn::Count,
            "mean" => AggFn::Mean,
            "min" => AggFn::Min,
            "max" => AggFn::Max,
            "sum" => AggFn::Sum,
            p if p.starts_with('p') => {
                let pct: f64 = p[1..].parse().map_err(|_| {
                    format!(
                        "unknown aggregate {fn_name:?} (expected count, mean, min, max, sum, \
                         or pNN)"
                    )
                })?;
                // NaN must fail too, so the contains form (never true for
                // NaN) is exactly right.
                if !(0.0..=100.0).contains(&pct) {
                    return Err(format!(
                        "percentile {fn_name:?} outside [0, 100] (p0 is the minimum, p100 the \
                         maximum)"
                    ));
                }
                AggFn::Percentile(pct)
            }
            other => {
                return Err(format!(
                    "unknown aggregate {other:?} (expected count, mean, min, max, sum, or pNN)"
                ))
            }
        };
        let col = if func == AggFn::Count && col_name.is_empty() {
            None
        } else {
            if col_name.is_empty() {
                return Err(format!(
                    "aggregate {item:?} needs a column, e.g. {fn_name}(value)"
                ));
            }
            let idx = column_index(col_name)?;
            if COLUMNS[idx].1 == ColumnType::Str && func != AggFn::Count {
                return Err(format!(
                    "aggregate {item:?}: cannot aggregate string column {col_name:?}"
                ));
            }
            Some(idx)
        };
        let label = match col {
            Some(idx) => format!("{fn_name}({})", COLUMNS[idx].0),
            None => "count".to_string(),
        };
        aggs.push(Agg { func, col, label });
    }
    Ok(aggs)
}

/// A totally ordered group-key cell: NaN sorts after every number.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Key {
    Str(String),
    U64(u64),
    I64(i64),
    F64(TotalF64),
}

#[derive(Clone, Copy, Debug)]
struct TotalF64(f64);

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for TotalF64 {}
impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

fn key_of(v: &Value) -> Key {
    match v {
        Value::Str(s) => Key::Str(s.clone()),
        Value::U64(x) => Key::U64(*x),
        Value::I64(x) => Key::I64(*x),
        Value::F64(x) => Key::F64(TotalF64(*x)),
    }
}

fn key_value(k: &Key) -> Value {
    match k {
        Key::Str(s) => Value::Str(s.clone()),
        Key::U64(x) => Value::U64(*x),
        Key::I64(x) => Value::I64(*x),
        Key::F64(x) => Value::F64(x.0),
    }
}

/// Materialized query output.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    pub header: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Value::render_csv).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push('{');
            for (i, (name, v)) in self.header.iter().zip(row).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\"{}\":{}",
                    hetsched_core::provenance::json_escape(name),
                    v.render_json()
                ));
            }
            out.push_str("}\n");
        }
        out
    }
}

/// True when `value` satisfies `op literal`. NaN cells match nothing.
fn matches(value: &Value, op: CmpOp, literal: &Literal) -> bool {
    match (value, literal) {
        (Value::Str(s), Literal::Str(lit)) => match op {
            CmpOp::Eq => s == lit,
            CmpOp::Ne => s != lit,
            _ => false,
        },
        (v, Literal::Num(lit)) => {
            let Some(x) = v.as_f64() else { return false };
            if x.is_nan() {
                return false;
            }
            match op {
                CmpOp::Eq => x == *lit,
                CmpOp::Ne => x != *lit,
                CmpOp::Lt => x < *lit,
                CmpOp::Le => x <= *lit,
                CmpOp::Gt => x > *lit,
                CmpOp::Ge => x >= *lit,
            }
        }
        _ => false,
    }
}

/// Can any row in a chunk with numeric zone `(lo, hi)` satisfy the
/// predicate? Conservative: NaN rows (excluded from the zone) never
/// match, so zone-only reasoning is sound.
fn zone_admits(zone: (f64, f64), op: CmpOp, lit: f64) -> bool {
    let (lo, hi) = zone;
    match op {
        CmpOp::Eq => lo <= lit && lit <= hi,
        CmpOp::Ne => !(lo == lit && hi == lit),
        CmpOp::Lt => lo < lit,
        CmpOp::Le => lo <= lit,
        CmpOp::Gt => hi > lit,
        CmpOp::Ge => hi >= lit,
    }
}

/// One aggregate's mergeable partial state. Every scan — single- or
/// multi-threaded — goes through these states per chunk, then merges
/// chunk partials in (segment, chunk) order, so float associativity is
/// fixed by the data layout, never by the thread count.
#[derive(Clone, Debug)]
enum AggState {
    /// `count`: matching cells (rows, for the bare `count`).
    Count(u64),
    /// `mean` and `sum`: running sum plus the non-NaN cell count.
    Sum { sum: f64, n: u64 },
    /// `min`: NaN while empty.
    Min(f64),
    /// `max`: NaN while empty.
    Max(f64),
    /// `pNN`: the cells themselves, in scan order.
    Values(Vec<f64>),
}

impl AggState {
    fn new(func: AggFn) -> AggState {
        match func {
            AggFn::Count => AggState::Count(0),
            AggFn::Mean | AggFn::Sum => AggState::Sum { sum: 0.0, n: 0 },
            AggFn::Min => AggState::Min(f64::NAN),
            AggFn::Max => AggState::Max(f64::NAN),
            AggFn::Percentile(_) => AggState::Values(Vec::new()),
        }
    }

    fn push(&mut self, x: f64) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum { sum, n } => {
                *sum += x;
                *n += 1;
            }
            AggState::Min(m) => *m = if m.is_nan() { x } else { m.min(x) },
            AggState::Max(m) => *m = if m.is_nan() { x } else { m.max(x) },
            AggState::Values(v) => v.push(x),
        }
    }

    /// Folds `other` (a later chunk's partial) into `self`. Callers merge
    /// in chunk order, which [`AggState::Values`] relies on.
    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum { sum, n }, AggState::Sum { sum: s2, n: n2 }) => {
                *sum += s2;
                *n += n2;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if !b.is_nan() {
                    *a = if a.is_nan() { b } else { a.min(b) };
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if !b.is_nan() {
                    *a = if a.is_nan() { b } else { a.max(b) };
                }
            }
            (AggState::Values(a), AggState::Values(b)) => a.extend(b),
            _ => unreachable!("merging partials of different aggregate kinds"),
        }
    }

    fn finish(self, func: AggFn) -> f64 {
        match (func, self) {
            (_, AggState::Count(n)) => n as f64,
            (AggFn::Mean, AggState::Sum { sum, n }) => {
                if n == 0 {
                    f64::NAN
                } else {
                    sum / n as f64
                }
            }
            (_, AggState::Sum { sum, .. }) => sum,
            (_, AggState::Min(m)) | (_, AggState::Max(m)) => m,
            (AggFn::Percentile(p), AggState::Values(mut values)) => {
                if values.is_empty() {
                    return f64::NAN;
                }
                values.sort_by(f64::total_cmp);
                let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
                values[rank.max(1) - 1]
            }
            _ => unreachable!("aggregate state does not match its function"),
        }
    }
}

/// One chunk's scan output: group partials when aggregating, projected
/// rows otherwise. `None` from [`scan_chunk`] means the chunk was pruned
/// or no row matched.
struct ChunkScan {
    groups: BTreeMap<Vec<Key>, Vec<AggState>>,
    rows: Vec<Vec<Value>>,
}

#[allow(clippy::too_many_arguments)]
fn scan_chunk(
    seg: &Segment,
    chunk_idx: usize,
    q: &Query,
    select: &[usize],
    filter_cols: &[usize],
    body_cols: &[usize],
    grouped: bool,
) -> Result<Option<ChunkScan>, String> {
    // Chunk pruning: numeric zones from the footer, string equality
    // against the chunk dictionary (header-only decode).
    for f in &q.filters {
        let meta = &seg.meta.chunks[chunk_idx].cols[f.col];
        match (&f.literal, meta.zone) {
            (Literal::Num(lit), Some(zone)) if !zone_admits(zone, f.op, *lit) => {
                return Ok(None);
            }
            (Literal::Str(lit), _) if f.op == CmpOp::Eq => {
                let bytes = seg.chunk_col_bytes(chunk_idx, f.col)?;
                if !str_chunk_contains(bytes, lit)? {
                    return Ok(None);
                }
            }
            _ => {}
        }
    }

    let n_rows = seg.meta.chunks[chunk_idx].rows;
    let mut cols: Vec<Option<ColumnData>> = vec![None; COLUMNS.len()];
    for &idx in filter_cols {
        cols[idx] = Some(seg.read_chunk_column(chunk_idx, idx)?);
    }
    let mut sel: Vec<usize> = Vec::new();
    'rows: for i in 0..n_rows {
        for f in &q.filters {
            let v = cols[f.col].as_ref().unwrap().value(i);
            if !matches(&v, f.op, &f.literal) {
                continue 'rows;
            }
        }
        sel.push(i);
    }
    if sel.is_empty() {
        return Ok(None);
    }
    // Projected/aggregated columns decode only for surviving chunks.
    for &idx in body_cols {
        if cols[idx].is_none() {
            cols[idx] = Some(seg.read_chunk_column(chunk_idx, idx)?);
        }
    }

    let mut out = ChunkScan {
        groups: BTreeMap::new(),
        rows: Vec::new(),
    };
    for &i in &sel {
        if grouped {
            let key: Vec<Key> = q
                .group_by
                .iter()
                .map(|&c| key_of(&cols[c].as_ref().unwrap().value(i)))
                .collect();
            let states = out
                .groups
                .entry(key)
                .or_insert_with(|| q.aggs.iter().map(|a| AggState::new(a.func)).collect());
            for (a, agg) in q.aggs.iter().enumerate() {
                match agg.col {
                    None => states[a].push(1.0),
                    Some(c) => {
                        let v = cols[c].as_ref().unwrap().value(i);
                        if let Some(x) = v.as_f64() {
                            if !x.is_nan() || agg.func == AggFn::Count {
                                states[a].push(x);
                            }
                        }
                    }
                }
            }
        } else {
            out.rows.push(
                select
                    .iter()
                    .map(|&c| cols[c].as_ref().unwrap().value(i))
                    .collect(),
            );
        }
    }
    Ok(Some(out))
}

/// Runs `q` over every segment of `store`, scanning chunks on all cores.
pub fn run_query(store: &Store, q: &Query) -> Result<QueryResult, String> {
    run_query_with(store, q, None)
}

/// Runs `q` with an explicit scan-thread count (`None` = all cores,
/// `Some(1)` = serial). Output is byte-identical at any thread count.
pub fn run_query_with(
    store: &Store,
    q: &Query,
    threads: Option<usize>,
) -> Result<QueryResult, String> {
    let grouped = !q.aggs.is_empty();
    let select: Vec<usize> = if grouped {
        Vec::new()
    } else if q.select.is_empty() {
        (0..COLUMNS.len()).collect()
    } else {
        q.select.clone()
    };

    // Split the needed columns into filter columns (decoded first, drive
    // the selection) and body columns (decoded only when a row survives).
    let mut filter_cols: Vec<usize> = Vec::new();
    for f in &q.filters {
        if !filter_cols.contains(&f.col) {
            filter_cols.push(f.col);
        }
    }
    let mut body_cols: Vec<usize> = Vec::new();
    let agg_cols = q.aggs.iter().filter_map(|a| a.col);
    for c in q.group_by.iter().chain(&select).copied().chain(agg_cols) {
        if !filter_cols.contains(&c) && !body_cols.contains(&c) {
            body_cols.push(c);
        }
    }

    let segments = store.segments()?;
    // One work item per chunk; `segments()` sorts by name, so this order
    // — the merge order — is a pure function of the store contents.
    let work: Vec<(usize, usize)> = segments
        .iter()
        .enumerate()
        .flat_map(|(s, seg)| (0..seg.meta.chunks.len()).map(move |c| (s, c)))
        .collect();
    let scan = |&(s, c): &(usize, usize)| {
        scan_chunk(
            &segments[s],
            c,
            q,
            &select,
            &filter_cols,
            &body_cols,
            grouped,
        )
    };

    if !grouped {
        let header: Vec<String> = select.iter().map(|&c| COLUMNS[c].0.to_string()).collect();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        if let Some(limit) = q.limit {
            // Serial with early exit: the parallel scan would decode every
            // chunk to keep the first `limit` rows of the full result —
            // same bytes, wasted work.
            for item in &work {
                if rows.len() >= limit {
                    break;
                }
                if let Some(chunk) = scan(item)? {
                    rows.extend(chunk.rows);
                }
            }
            rows.truncate(limit);
        } else {
            for partial in parallel_map(&work, threads, |_, item| scan(item)) {
                if let Some(chunk) = partial? {
                    rows.extend(chunk.rows);
                }
            }
        }
        return Ok(QueryResult { header, rows });
    }

    let mut groups: BTreeMap<Vec<Key>, Vec<AggState>> = BTreeMap::new();
    // Deterministic merge: partials come back in work-list order whatever
    // the thread count (parallel_map preserves slot order).
    for partial in parallel_map(&work, threads, |_, item| scan(item)) {
        let Some(chunk) = partial? else { continue };
        for (key, states) in chunk.groups {
            match groups.entry(key) {
                Entry::Vacant(e) => {
                    e.insert(states);
                }
                Entry::Occupied(mut e) => {
                    for (acc, state) in e.get_mut().iter_mut().zip(states) {
                        acc.merge(state);
                    }
                }
            }
        }
    }

    let mut header: Vec<String> = q
        .group_by
        .iter()
        .map(|&c| COLUMNS[c].0.to_string())
        .collect();
    header.extend(q.aggs.iter().map(|a| a.label.clone()));
    // A global aggregate over zero matching rows still reports one row.
    if q.group_by.is_empty() && groups.is_empty() {
        groups.insert(
            Vec::new(),
            q.aggs.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }
    let mut rows = Vec::with_capacity(groups.len());
    for (key, states) in groups {
        let mut row: Vec<Value> = key.iter().map(key_value).collect();
        for (agg, state) in q.aggs.iter().zip(states) {
            row.push(Value::F64(state.finish(agg.func)));
        }
        rows.push(row);
    }
    if let Some(limit) = q.limit {
        rows.truncate(limit);
    }
    Ok(QueryResult { header, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Row;

    fn test_store(tag: &str, rows: Vec<Row>) -> (Store, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("hsc-query-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir).unwrap();
        let mut b = store.batch();
        b.push_all(rows);
        b.commit().unwrap();
        (store, dir)
    }

    fn report(strategy: &str, metric: &str, value: f64, beta: f64) -> Row {
        let mut r = Row::new("c", "r", "report", "cfg0");
        r.strategy = strategy.to_string();
        r.metric = metric.to_string();
        r.value = value;
        r.beta = beta;
        r
    }

    #[test]
    fn filter_parse_errors_are_contextful() {
        assert!(parse_filters("kind=report").is_ok());
        let err = parse_filters("bogus=1").unwrap_err();
        assert!(err.contains("unknown column"), "{err}");
        let err = parse_filters("value~1").unwrap_err();
        assert!(err.contains("malformed predicate"), "{err}");
        let err = parse_filters("value=abc").unwrap_err();
        assert!(err.contains("not a number"), "{err}");
        let err = parse_filters("kind<x").unwrap_err();
        assert!(err.contains("supports only"), "{err}");
    }

    #[test]
    fn range_literals_desugar_to_bound_pairs() {
        let f = parse_filters("value=2..5").unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].col, f[0].op), (15, CmpOp::Ge));
        assert_eq!((f[1].col, f[1].op), (15, CmpOp::Lt));
        assert!(matches!(f[0].literal, Literal::Num(lo) if lo == 2.0));
        assert!(matches!(f[1].literal, Literal::Num(hi) if hi == 5.0));

        let f = parse_filters("value=-2.5..=5").unwrap();
        assert_eq!(f[1].op, CmpOp::Le);
        assert!(matches!(f[0].literal, Literal::Num(lo) if lo == -2.5));

        let err = parse_filters("kind=a..b").unwrap_err();
        assert!(err.contains("numeric columns only"), "{err}");
        let err = parse_filters("value>=1..5").unwrap_err();
        assert!(err.contains("lo..hi"), "{err}");
        let err = parse_filters("value=1..").unwrap_err();
        assert!(err.contains("upper bound"), "{err}");
        let err = parse_filters("value=..5").unwrap_err();
        assert!(err.contains("lower bound"), "{err}");
        let err = parse_filters("value=x..5").unwrap_err();
        assert!(err.contains("not a number"), "{err}");
    }

    #[test]
    fn range_predicates_evaluate_half_open_and_inclusive() {
        let rows = (1..=6)
            .map(|i| report("D", "m", i as f64, f64::NAN))
            .collect();
        let (store, dir) = test_store("range", rows);
        let q = build_query(Some("value"), Some("value=2..5"), None, None, None).unwrap();
        let res = run_query(&store, &q).unwrap();
        assert_eq!(res.to_csv(), "value\n2\n3\n4\n");
        let q = build_query(Some("value"), Some("value=2..=5"), None, None, None).unwrap();
        let res = run_query(&store, &q).unwrap();
        assert_eq!(res.to_csv(), "value\n2\n3\n4\n5\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zone_admits_each_operator() {
        let zone = (2.0, 5.0);
        assert!(zone_admits(zone, CmpOp::Eq, 2.0));
        assert!(zone_admits(zone, CmpOp::Eq, 5.0));
        assert!(!zone_admits(zone, CmpOp::Eq, 1.0));
        assert!(!zone_admits(zone, CmpOp::Eq, 6.0));
        assert!(zone_admits(zone, CmpOp::Ne, 3.0));
        assert!(!zone_admits((4.0, 4.0), CmpOp::Ne, 4.0));
        assert!(zone_admits(zone, CmpOp::Lt, 2.5));
        assert!(!zone_admits(zone, CmpOp::Lt, 2.0));
        assert!(zone_admits(zone, CmpOp::Le, 2.0));
        assert!(!zone_admits(zone, CmpOp::Le, 1.9));
        assert!(zone_admits(zone, CmpOp::Gt, 4.5));
        assert!(!zone_admits(zone, CmpOp::Gt, 5.0));
        assert!(zone_admits(zone, CmpOp::Ge, 5.0));
        assert!(!zone_admits(zone, CmpOp::Ge, 5.1));
    }

    #[test]
    fn agg_parse_both_syntaxes() {
        let aggs = parse_aggs("count,mean(value),p95:t,max(beta)").unwrap();
        assert_eq!(aggs.len(), 4);
        assert_eq!(aggs[0].label, "count");
        assert_eq!(aggs[1].label, "mean(value)");
        assert_eq!(aggs[2].func, AggFn::Percentile(95.0));
        assert_eq!(aggs[2].label, "p95(t)");
        assert!(parse_aggs("median(value)").is_err());
        assert!(parse_aggs("mean(kind)").is_err());
        assert!(parse_aggs("p200(value)").is_err());
    }

    #[test]
    fn percentile_bounds_are_validated() {
        // Endpoints are legal: p0 = min, p100 = max.
        let (store, dir) = test_store(
            "pbounds",
            (1..=10)
                .map(|i| report("D", "m", i as f64, f64::NAN))
                .collect(),
        );
        let q = build_query(None, None, None, Some("p0(value),p100(value)"), None).unwrap();
        let res = run_query(&store, &q).unwrap();
        assert_eq!(res.rows[0][0], Value::F64(1.0));
        assert_eq!(res.rows[0][1], Value::F64(10.0));
        std::fs::remove_dir_all(&dir).ok();

        for bad in ["p101(value)", "p-0.5(value)", "pNaN(value)"] {
            let err = parse_aggs(bad).unwrap_err();
            assert!(err.contains("[0, 100]"), "{bad}: {err}");
        }
    }

    #[test]
    fn projection_and_predicates() {
        let rows = vec![
            report("Dynamic", "makespan", 10.0, f64::NAN),
            report("Dynamic", "makespan", 12.0, f64::NAN),
            report("Random", "makespan", 20.0, f64::NAN),
            report("Random", "blocks", 99.0, f64::NAN),
        ];
        let (store, dir) = test_store("proj", rows);
        let q = build_query(
            Some("strategy,value"),
            Some("metric=makespan,value>=12"),
            None,
            None,
            None,
        )
        .unwrap();
        let res = run_query(&store, &q).unwrap();
        assert_eq!(res.header, vec!["strategy", "value"]);
        assert_eq!(res.rows.len(), 2);
        assert_eq!(res.to_csv(), "strategy,value\nDynamic,12\nRandom,20\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_by_aggregates_and_percentiles() {
        let mut rows = Vec::new();
        for i in 1..=100 {
            rows.push(report("Dynamic", "makespan", i as f64, f64::NAN));
        }
        rows.push(report("Random", "makespan", 1000.0, f64::NAN));
        let (store, dir) = test_store("group", rows);
        let q = build_query(
            None,
            Some("metric=makespan"),
            Some("strategy"),
            Some("count,mean(value),p50(value),p95(value),min(value),max(value)"),
            None,
        )
        .unwrap();
        let res = run_query(&store, &q).unwrap();
        assert_eq!(res.rows.len(), 2);
        // BTreeMap ordering: "Dynamic" < "Random".
        assert_eq!(res.rows[0][0], Value::Str("Dynamic".into()));
        assert_eq!(res.rows[0][1], Value::F64(100.0)); // count
        assert_eq!(res.rows[0][2], Value::F64(50.5)); // mean
        assert_eq!(res.rows[0][3], Value::F64(50.0)); // p50 nearest-rank
        assert_eq!(res.rows[0][4], Value::F64(95.0)); // p95
        assert_eq!(res.rows[0][5], Value::F64(1.0));
        assert_eq!(res.rows[0][6], Value::F64(100.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn thread_count_does_not_change_output_bytes() {
        // Several segments (one per batch) so the work list has real
        // parallel structure, with group keys interleaved across them.
        let dir = std::env::temp_dir().join(format!("hsc-query-mt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Store::open(&dir).unwrap();
        for s in 0..6 {
            let mut b = store.batch();
            for i in 0..40 {
                let strat = if (s + i) % 2 == 0 {
                    "Dynamic"
                } else {
                    "Random"
                };
                let mut r = report(strat, "makespan", (s * 40 + i) as f64 * 0.1, f64::NAN);
                r.run = format!("r{s}");
                b.push(r);
            }
            b.commit().unwrap();
        }
        let grouped = build_query(
            None,
            Some("metric=makespan"),
            Some("strategy"),
            Some("count,mean(value),sum(value),p50(value),min(value),max(value)"),
            None,
        )
        .unwrap();
        let plain = build_query(Some("run,value"), Some("value>=2"), None, None, None).unwrap();
        for q in [&grouped, &plain] {
            let base = run_query_with(&store, q, Some(1)).unwrap();
            for threads in [2, 3, 8] {
                let res = run_query_with(&store, q, Some(threads)).unwrap();
                assert_eq!(
                    res.to_csv(),
                    base.to_csv(),
                    "CSV must be byte-identical at {threads} threads"
                );
                assert_eq!(res.to_jsonl(), base.to_jsonl());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nan_matches_no_predicate_and_skips_means() {
        let rows = vec![
            report("D", "m", f64::NAN, f64::NAN),
            report("D", "m", 4.0, f64::NAN),
        ];
        let (store, dir) = test_store("nan", rows);
        let q = build_query(None, Some("value>=0"), None, None, None).unwrap();
        assert_eq!(run_query(&store, &q).unwrap().rows.len(), 1);
        let q = build_query(
            None,
            None,
            Some("strategy"),
            Some("count,mean(value)"),
            None,
        )
        .unwrap();
        let res = run_query(&store, &q).unwrap();
        assert_eq!(res.rows[0][1], Value::F64(2.0), "count includes NaN rows");
        assert_eq!(res.rows[0][2], Value::F64(4.0), "mean skips NaN");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn global_aggregate_and_empty_store() {
        let (store, dir) = test_store("glob", vec![report("D", "m", 2.0, f64::NAN)]);
        let q = build_query(None, None, None, Some("count,sum(value)"), None).unwrap();
        let res = run_query(&store, &q).unwrap();
        assert_eq!(res.rows, vec![vec![Value::F64(1.0), Value::F64(2.0)]]);
        std::fs::remove_dir_all(&dir).ok();

        let empty_dir = std::env::temp_dir().join(format!("hsc-query-none-{}", std::process::id()));
        std::fs::remove_dir_all(&empty_dir).ok();
        let empty = Store::open(&empty_dir).unwrap();
        let res = run_query(&empty, &q).unwrap();
        assert_eq!(res.rows[0][0], Value::F64(0.0));
        assert_eq!(res.rows[0][1], Value::F64(0.0), "sum over nothing is 0");
        let plain = build_query(None, None, None, None, None).unwrap();
        assert!(run_query(&empty, &plain).unwrap().rows.is_empty());
        std::fs::remove_dir_all(&empty_dir).ok();
    }

    #[test]
    fn limit_and_jsonl_rendering() {
        let rows = vec![
            report("D", "m", 1.0, f64::NAN),
            report("D", "m", 2.0, f64::NAN),
            report("D", "m", 3.0, f64::NAN),
        ];
        let (store, dir) = test_store("limit", rows);
        let q = build_query(Some("metric,value,beta"), None, None, None, Some(2)).unwrap();
        let res = run_query(&store, &q).unwrap();
        assert_eq!(res.rows.len(), 2);
        assert_eq!(
            res.to_jsonl(),
            "{\"metric\":\"m\",\"value\":1,\"beta\":null}\n{\"metric\":\"m\",\"value\":2,\"beta\":null}\n"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zone_and_dictionary_pruning_skip_chunks() {
        // Two separate segments with disjoint value ranges and kinds; a
        // predicate selecting one must not decode the other (verified
        // indirectly: results stay correct under pruning).
        let (store, dir) = test_store("prune1", vec![report("D", "m", 5.0, f64::NAN)]);
        let mut b = store.batch();
        let mut other = Row::new("c2", "r2", "figure", "cfgX");
        other.metric = "fig2".to_string();
        other.value = 500.0;
        b.push(other);
        b.commit().unwrap();
        let q = build_query(None, Some("kind=figure,value>100"), None, None, None).unwrap();
        let res = run_query(&store, &q).unwrap();
        assert_eq!(res.rows.len(), 1);
        let q = build_query(None, Some("value<1"), None, None, None).unwrap();
        assert!(run_query(&store, &q).unwrap().rows.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
