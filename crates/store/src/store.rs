//! The store directory: a flat set of immutable segment files.
//!
//! A store is just a directory of `seg-<hash>.hsc` files. Segment names
//! are content-addressed (FNV-1a over the encoded bytes), so re-ingesting
//! identical data rewrites the same file — idempotent by construction —
//! and two daemon workers committing concurrently can never clobber each
//! other's distinct batches. Writes go through a temp file + rename so a
//! crash mid-write leaves no half segment behind. Dedupe above the byte
//! level uses the run keys recorded in every footer: `contains_run` scans
//! footers only, never row data.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use crate::schema::Row;
use crate::segment::{encode_segment, Segment};

/// 64-bit FNV-1a — the store's only hash. Used for segment names and for
/// config hashes (see [`crate::ingest::config_hash`]).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The footer run-key string for `(campaign, run, config)`. Unit
/// separators keep the three parts unambiguous whatever they contain.
pub fn run_key(campaign: &str, run: &str, config: &str) -> String {
    format!("{campaign}\u{1f}{run}\u{1f}{config}")
}

/// An open store directory.
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if absent) the store at `dir`.
    pub fn open(dir: &Path) -> io::Result<Store> {
        std::fs::create_dir_all(dir)?;
        Ok(Store {
            dir: dir.to_path_buf(),
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Paths of every segment file, sorted by name for deterministic scan
    /// order.
    pub fn segment_paths(&self) -> io::Result<Vec<PathBuf>> {
        let mut paths = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("seg-") && name.ends_with(".hsc") {
                paths.push(path);
            }
        }
        paths.sort();
        Ok(paths)
    }

    /// Opens every segment.
    pub fn segments(&self) -> Result<Vec<Segment>, String> {
        let paths = self
            .segment_paths()
            .map_err(|e| format!("cannot list store {}: {e}", self.dir.display()))?;
        paths.iter().map(|p| Segment::open(p)).collect()
    }

    /// Sum of row counts across all segment footers.
    pub fn total_rows(&self) -> Result<usize, String> {
        let paths = self
            .segment_paths()
            .map_err(|e| format!("cannot list store {}: {e}", self.dir.display()))?;
        let mut total = 0;
        for p in &paths {
            total += Segment::read_meta(p)?.total_rows;
        }
        Ok(total)
    }

    /// True when some segment already holds rows for this run key. Reads
    /// footers only — this is the replay-safe dedupe check used by
    /// `hetsched serve --store` and `simulate --store`.
    pub fn contains_run(&self, campaign: &str, run: &str, config: &str) -> Result<bool, String> {
        let key = run_key(campaign, run, config);
        let paths = self
            .segment_paths()
            .map_err(|e| format!("cannot list store {}: {e}", self.dir.display()))?;
        for p in &paths {
            if Segment::read_meta(p)?.run_keys.contains(&key) {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Starts an ingest batch; commit writes one segment.
    pub fn batch(&self) -> IngestBatch<'_> {
        IngestBatch {
            store: self,
            rows: Vec::new(),
        }
    }
}

/// Rows accumulated for one segment. Run keys are derived from the rows'
/// own `(campaign, run, config)` columns at commit time, so a batch can
/// never claim a run it holds no rows for.
pub struct IngestBatch<'a> {
    store: &'a Store,
    rows: Vec<Row>,
}

impl IngestBatch<'_> {
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    pub fn push_all(&mut self, rows: impl IntoIterator<Item = Row>) {
        self.rows.extend(rows);
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Writes the batch as one segment; returns its path, or `None` for
    /// an empty batch (nothing is written).
    pub fn commit(self) -> Result<Option<PathBuf>, String> {
        if self.rows.is_empty() {
            return Ok(None);
        }
        let keys: BTreeSet<String> = self
            .rows
            .iter()
            .map(|r| run_key(&r.campaign, &r.run, &r.config))
            .collect();
        let keys: Vec<String> = keys.into_iter().collect();
        let bytes = encode_segment(&self.rows, &keys);
        let name = format!("seg-{:016x}.hsc", fnv1a64(&bytes));
        let final_path = self.store.dir.join(&name);
        let tmp_path = self
            .store
            .dir
            .join(format!(".tmp-{name}-{}", std::process::id()));
        std::fs::write(&tmp_path, &bytes)
            .map_err(|e| format!("cannot write segment {}: {e}", tmp_path.display()))?;
        std::fs::rename(&tmp_path, &final_path)
            .map_err(|e| format!("cannot commit segment {}: {e}", final_path.display()))?;
        Ok(Some(final_path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsc-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn row(campaign: &str, run: &str, v: f64) -> Row {
        let mut r = Row::new(campaign, run, "report", "0123456789abcdef");
        r.metric = "makespan".into();
        r.value = v;
        r
    }

    #[test]
    fn batch_commit_and_dedupe() {
        let dir = scratch("dedupe");
        let store = Store::open(&dir).unwrap();
        assert!(!store.contains_run("c", "r1", "0123456789abcdef").unwrap());

        let mut b = store.batch();
        b.push(row("c", "r1", 1.0));
        b.push(row("c", "r1", 2.0));
        let path = b.commit().unwrap().unwrap();
        assert!(path.exists());

        assert!(store.contains_run("c", "r1", "0123456789abcdef").unwrap());
        assert!(!store.contains_run("c", "r2", "0123456789abcdef").unwrap());
        assert!(!store.contains_run("c", "r1", "ffff").unwrap());
        assert_eq!(store.total_rows().unwrap(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_batches_are_idempotent() {
        let dir = scratch("idem");
        let store = Store::open(&dir).unwrap();
        for _ in 0..3 {
            let mut b = store.batch();
            b.push(row("c", "r1", 1.5));
            b.commit().unwrap();
        }
        // Content-addressed name: three identical commits, one segment.
        assert_eq!(store.segment_paths().unwrap().len(), 1);
        assert_eq!(store.total_rows().unwrap(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_batch_writes_nothing() {
        let dir = scratch("empty");
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.batch().commit().unwrap(), None);
        assert!(store.segment_paths().unwrap().is_empty());
        assert_eq!(store.total_rows().unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_batches_accumulate() {
        let dir = scratch("accum");
        let store = Store::open(&dir).unwrap();
        let mut b = store.batch();
        b.push(row("c", "r1", 1.0));
        b.commit().unwrap();
        let mut b = store.batch();
        b.push(row("c", "r2", 2.0));
        b.commit().unwrap();
        assert_eq!(store.segment_paths().unwrap().len(), 2);
        assert_eq!(store.total_rows().unwrap(), 2);
        assert!(store.contains_run("c", "r2", "0123456789abcdef").unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so segment names stay stable across builds.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
