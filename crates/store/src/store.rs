//! The store directory: a flat set of immutable segment files.
//!
//! A store is just a directory of `seg-<hash>.hsc` files. Segment names
//! are content-addressed (FNV-1a over the encoded bytes), so re-ingesting
//! identical data rewrites the same file — idempotent by construction —
//! and two daemon workers committing concurrently can never clobber each
//! other's distinct batches. Writes go through a temp file + rename so a
//! crash mid-write leaves no half segment behind. Dedupe above the byte
//! level uses the run keys recorded in every footer: `contains_run` scans
//! footers only, never row data.
//!
//! Content addressing also makes footers immutable: a `Store` handle
//! caches parsed footers by file name, so repeated dedupe checks and row
//! counts over a long-lived handle read each footer once. And it makes
//! [`Store::compact`] safe — merging small segments into one rewrites the
//! same rows under a new content-addressed name, run keys preserved, so
//! replay dedupe and queries see the store unchanged while the file count
//! drops to ⌈rows / 64Ki⌉-scale.

use std::collections::{BTreeSet, HashMap};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::schema::Row;
use crate::segment::{encode_segment, Segment, SegmentMeta, CHUNK_ROWS};

/// 64-bit FNV-1a — the store's only hash. Used for segment names and for
/// config hashes (see [`crate::ingest::config_hash`]).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The footer run-key string for `(campaign, run, config)`. Unit
/// separators keep the three parts unambiguous whatever they contain.
pub fn run_key(campaign: &str, run: &str, config: &str) -> String {
    format!("{campaign}\u{1f}{run}\u{1f}{config}")
}

/// What one [`Store::compact`] pass did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Small segments merged away (0 when there was nothing to do).
    pub merged: usize,
    /// Rows rewritten into the merged segment(s).
    pub rows: usize,
    /// Segment count before / after the pass.
    pub segments_before: usize,
    pub segments_after: usize,
    /// Stale temp files (from crashed writers) removed.
    pub tmp_cleaned: usize,
}

/// An open store directory.
pub struct Store {
    dir: PathBuf,
    /// Parsed footers keyed by file name. Segment files are
    /// content-addressed, hence immutable: a cached footer can go stale
    /// only by its file disappearing (compaction), never by changing.
    meta_cache: Mutex<HashMap<String, Arc<SegmentMeta>>>,
}

impl Store {
    /// Opens (creating if absent) the store at `dir`.
    pub fn open(dir: &Path) -> io::Result<Store> {
        std::fs::create_dir_all(dir)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            meta_cache: Mutex::new(HashMap::new()),
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Paths of every segment file, sorted by name for deterministic scan
    /// order.
    pub fn segment_paths(&self) -> io::Result<Vec<PathBuf>> {
        let mut paths = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("seg-") && name.ends_with(".hsc") {
                paths.push(path);
            }
        }
        paths.sort();
        Ok(paths)
    }

    /// Opens every segment. A segment that vanishes between the listing
    /// and the read (a concurrent compaction removed it after writing its
    /// replacement) is skipped, not an error.
    pub fn segments(&self) -> Result<Vec<Segment>, String> {
        let paths = self
            .segment_paths()
            .map_err(|e| format!("cannot list store {}: {e}", self.dir.display()))?;
        let mut segments = Vec::with_capacity(paths.len());
        for p in &paths {
            if let Some(seg) = Segment::open_if_present(p)? {
                segments.push(seg);
            }
        }
        Ok(segments)
    }

    /// The parsed footer of the segment at `path`, via the handle's
    /// footer cache. `None` when the file is gone (compacted away).
    pub fn segment_meta(&self, path: &Path) -> Result<Option<Arc<SegmentMeta>>, String> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("segment path {} has no file name", path.display()))?
            .to_string();
        if let Some(meta) = self.cache_lock().get(&name) {
            return Ok(Some(Arc::clone(meta)));
        }
        let Some(meta) = Segment::read_meta_if_present(path)? else {
            return Ok(None);
        };
        let meta = Arc::new(meta);
        self.cache_lock().insert(name, Arc::clone(&meta));
        Ok(Some(meta))
    }

    /// The footer cache never holds partial state across a panic (inserts
    /// are single calls), so a poisoned lock is safe to take over.
    fn cache_lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<SegmentMeta>>> {
        self.meta_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Sum of row counts across all segment footers.
    pub fn total_rows(&self) -> Result<usize, String> {
        let paths = self
            .segment_paths()
            .map_err(|e| format!("cannot list store {}: {e}", self.dir.display()))?;
        let mut total = 0;
        for p in &paths {
            if let Some(meta) = self.segment_meta(p)? {
                total += meta.total_rows;
            }
        }
        Ok(total)
    }

    /// True when some segment already holds rows for this run key. Reads
    /// footers only (cached per handle) — this is the replay-safe dedupe
    /// check used by `hetsched serve --store` and `simulate --store`.
    pub fn contains_run(&self, campaign: &str, run: &str, config: &str) -> Result<bool, String> {
        let key = run_key(campaign, run, config);
        let paths = self
            .segment_paths()
            .map_err(|e| format!("cannot list store {}: {e}", self.dir.display()))?;
        for p in &paths {
            if let Some(meta) = self.segment_meta(p)? {
                if meta.run_keys.contains(&key) {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Starts an ingest batch; commit writes one segment.
    pub fn batch(&self) -> IngestBatch<'_> {
        IngestBatch {
            store: self,
            rows: Vec::new(),
        }
    }

    /// Merges every segment smaller than `max_segment_rows` into one
    /// segment of full [`CHUNK_ROWS`]-row chunks. Long-lived `serve
    /// --store` daemons write one small segment per completed job, so a
    /// real campaign degrades into thousands of fragments whose footers
    /// every query must open; this pass rewrites them as one file.
    ///
    /// Rows are concatenated in segment-name/chunk/row order and run keys
    /// unioned, so queries and replay dedupe see identical data before
    /// and after. The merged segment is written (content-addressed, temp
    /// file + rename) *before* the old segments are removed: a crash at
    /// any point leaves either the old segments plus an ignorable temp
    /// file, or the merged segment plus some not-yet-removed old ones —
    /// both states query identically modulo duplicated rows being
    /// impossible (removal happens only after the rename lands, and
    /// readers scan names, not content, exactly once each).
    ///
    /// Stale temp files left by crashed *other* processes (pid differs)
    /// are swept; our own pid's temp files may belong to a live writer
    /// thread and are left alone.
    pub fn compact(&self, max_segment_rows: usize) -> Result<CompactReport, String> {
        let mut report = CompactReport {
            tmp_cleaned: self.clean_stale_tmp()?,
            ..CompactReport::default()
        };
        let paths = self
            .segment_paths()
            .map_err(|e| format!("cannot list store {}: {e}", self.dir.display()))?;
        report.segments_before = paths.len();
        report.segments_after = paths.len();
        let mut small: Vec<&PathBuf> = Vec::new();
        for p in &paths {
            if let Some(meta) = self.segment_meta(p)? {
                if meta.total_rows < max_segment_rows {
                    small.push(p);
                }
            }
        }
        if small.len() < 2 {
            return Ok(report);
        }

        let mut rows: Vec<Row> = Vec::new();
        let mut keys: BTreeSet<String> = BTreeSet::new();
        for p in &small {
            let Some(seg) = Segment::open_if_present(p)? else {
                // Vanished under us: a concurrent pass merged it already.
                // Its rows live in that pass's output; retrying later
                // sees the settled state.
                return Ok(report);
            };
            keys.extend(seg.meta.run_keys.iter().cloned());
            rows.append(&mut seg.rows()?);
        }
        let keys: Vec<String> = keys.into_iter().collect();
        let merged = write_segment(&self.dir, &encode_segment(&rows, &keys))?;
        for p in &small {
            if **p == merged {
                continue;
            }
            match std::fs::remove_file(p) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(format!("cannot remove {}: {e}", p.display())),
            }
            if let Some(name) = p.file_name().and_then(|n| n.to_str()) {
                self.cache_lock().remove(name);
            }
        }
        report.merged = small.len();
        report.rows = rows.len();
        report.segments_after = self
            .segment_paths()
            .map_err(|e| format!("cannot list store {}: {e}", self.dir.display()))?
            .len();
        Ok(report)
    }

    /// Count of segments smaller than [`CHUNK_ROWS`] rows — the
    /// fragmentation signal the serve daemon's opportunistic compaction
    /// trigger watches. Footer-cache cheap on a long-lived handle.
    pub fn small_segment_count(&self) -> Result<usize, String> {
        let paths = self
            .segment_paths()
            .map_err(|e| format!("cannot list store {}: {e}", self.dir.display()))?;
        let mut count = 0;
        for p in &paths {
            if let Some(meta) = self.segment_meta(p)? {
                if meta.total_rows < CHUNK_ROWS {
                    count += 1;
                }
            }
        }
        Ok(count)
    }

    /// Removes `.tmp-*` files left behind by *crashed* writer processes
    /// (trailing pid differs from ours). Same-pid temp files may belong
    /// to a live writer thread mid-commit and are kept.
    fn clean_stale_tmp(&self) -> Result<usize, String> {
        let our_pid = format!("-{}", std::process::id());
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| format!("cannot list store {}: {e}", self.dir.display()))?;
        let mut cleaned = 0;
        for entry in entries {
            let path = entry
                .map_err(|e| format!("cannot list store {}: {e}", self.dir.display()))?
                .path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with(".tmp-") && !name.ends_with(&our_pid) {
                match std::fs::remove_file(&path) {
                    Ok(()) => cleaned += 1,
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(format!("cannot remove {}: {e}", path.display())),
                }
            }
        }
        Ok(cleaned)
    }
}

/// Writes encoded segment bytes under their content-addressed name via a
/// temp file + atomic rename; returns the final path. Shared by ingest
/// commits and compaction.
fn write_segment(dir: &Path, bytes: &[u8]) -> Result<PathBuf, String> {
    let name = format!("seg-{:016x}.hsc", fnv1a64(bytes));
    let final_path = dir.join(&name);
    let tmp_path = dir.join(format!(".tmp-{name}-{}", std::process::id()));
    std::fs::write(&tmp_path, bytes)
        .map_err(|e| format!("cannot write segment {}: {e}", tmp_path.display()))?;
    std::fs::rename(&tmp_path, &final_path)
        .map_err(|e| format!("cannot commit segment {}: {e}", final_path.display()))?;
    Ok(final_path)
}

/// Rows accumulated for one segment. Run keys are derived from the rows'
/// own `(campaign, run, config)` columns at commit time, so a batch can
/// never claim a run it holds no rows for.
pub struct IngestBatch<'a> {
    store: &'a Store,
    rows: Vec<Row>,
}

impl IngestBatch<'_> {
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    pub fn push_all(&mut self, rows: impl IntoIterator<Item = Row>) {
        self.rows.extend(rows);
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Writes the batch as one segment; returns its path, or `None` for
    /// an empty batch (nothing is written).
    pub fn commit(self) -> Result<Option<PathBuf>, String> {
        if self.rows.is_empty() {
            return Ok(None);
        }
        let keys: BTreeSet<String> = self
            .rows
            .iter()
            .map(|r| run_key(&r.campaign, &r.run, &r.config))
            .collect();
        let keys: Vec<String> = keys.into_iter().collect();
        let bytes = encode_segment(&self.rows, &keys);
        write_segment(&self.store.dir, &bytes).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsc-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn row(campaign: &str, run: &str, v: f64) -> Row {
        let mut r = Row::new(campaign, run, "report", "0123456789abcdef");
        r.metric = "makespan".into();
        r.value = v;
        r
    }

    #[test]
    fn batch_commit_and_dedupe() {
        let dir = scratch("dedupe");
        let store = Store::open(&dir).unwrap();
        assert!(!store.contains_run("c", "r1", "0123456789abcdef").unwrap());

        let mut b = store.batch();
        b.push(row("c", "r1", 1.0));
        b.push(row("c", "r1", 2.0));
        let path = b.commit().unwrap().unwrap();
        assert!(path.exists());

        assert!(store.contains_run("c", "r1", "0123456789abcdef").unwrap());
        assert!(!store.contains_run("c", "r2", "0123456789abcdef").unwrap());
        assert!(!store.contains_run("c", "r1", "ffff").unwrap());
        assert_eq!(store.total_rows().unwrap(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn identical_batches_are_idempotent() {
        let dir = scratch("idem");
        let store = Store::open(&dir).unwrap();
        for _ in 0..3 {
            let mut b = store.batch();
            b.push(row("c", "r1", 1.5));
            b.commit().unwrap();
        }
        // Content-addressed name: three identical commits, one segment.
        assert_eq!(store.segment_paths().unwrap().len(), 1);
        assert_eq!(store.total_rows().unwrap(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_batch_writes_nothing() {
        let dir = scratch("empty");
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.batch().commit().unwrap(), None);
        assert!(store.segment_paths().unwrap().is_empty());
        assert_eq!(store.total_rows().unwrap(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_batches_accumulate() {
        let dir = scratch("accum");
        let store = Store::open(&dir).unwrap();
        let mut b = store.batch();
        b.push(row("c", "r1", 1.0));
        b.commit().unwrap();
        let mut b = store.batch();
        b.push(row("c", "r2", 2.0));
        b.commit().unwrap();
        assert_eq!(store.segment_paths().unwrap().len(), 2);
        assert_eq!(store.total_rows().unwrap(), 2);
        assert!(store.contains_run("c", "r2", "0123456789abcdef").unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn footer_cache_serves_repeat_reads() {
        let dir = scratch("cache");
        let store = Store::open(&dir).unwrap();
        let mut b = store.batch();
        b.push(row("c", "r1", 1.0));
        b.commit().unwrap();
        let path = &store.segment_paths().unwrap()[0];
        let first = store.segment_meta(path).unwrap().unwrap();
        let second = store.segment_meta(path).unwrap().unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second read must come from the cache"
        );
        // A fresh handle re-reads from disk but sees the same footer.
        let other = Store::open(&dir).unwrap();
        let third = other.segment_meta(path).unwrap().unwrap();
        assert_eq!(third.total_rows, first.total_rows);
        assert_eq!(third.run_keys, first.run_keys);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_merges_small_segments_preserving_rows_and_keys() {
        let dir = scratch("compact");
        let store = Store::open(&dir).unwrap();
        for i in 0..5 {
            let mut b = store.batch();
            b.push(row("c", &format!("r{i}"), i as f64));
            b.commit().unwrap();
        }
        assert_eq!(store.segment_paths().unwrap().len(), 5);
        let report = store.compact(CHUNK_ROWS).unwrap();
        assert_eq!(report.merged, 5);
        assert_eq!(report.rows, 5);
        assert_eq!(report.segments_before, 5);
        assert_eq!(report.segments_after, 1);
        assert_eq!(store.segment_paths().unwrap().len(), 1);
        assert_eq!(store.total_rows().unwrap(), 5);
        for i in 0..5 {
            assert!(
                store
                    .contains_run("c", &format!("r{i}"), "0123456789abcdef")
                    .unwrap(),
                "run key r{i} must survive compaction"
            );
        }
        // Compacting again is a no-op: one segment left, nothing to merge.
        let again = store.compact(CHUNK_ROWS).unwrap();
        assert_eq!(again.merged, 0);
        assert_eq!(store.segment_paths().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_is_deterministic_and_spares_big_segments() {
        let dir_a = scratch("compact-det-a");
        let dir_b = scratch("compact-det-b");
        for dir in [&dir_a, &dir_b] {
            let store = Store::open(dir).unwrap();
            for i in 0..4 {
                let mut b = store.batch();
                b.push(row("c", &format!("r{i}"), i as f64));
                b.commit().unwrap();
            }
            store.compact(CHUNK_ROWS).unwrap();
        }
        let names = |dir: &Path| -> Vec<String> {
            Store::open(dir)
                .unwrap()
                .segment_paths()
                .unwrap()
                .iter()
                .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
                .collect()
        };
        assert_eq!(
            names(&dir_a),
            names(&dir_b),
            "same fragments compact to the same content-addressed segment"
        );

        // A segment at/above the row threshold is left untouched.
        let store = Store::open(&dir_a).unwrap();
        let big = store.segment_paths().unwrap()[0].clone();
        let mut b = store.batch();
        b.push(row("c", "extra-1", 9.0));
        b.commit().unwrap();
        let mut b = store.batch();
        b.push(row("c", "extra-2", 10.0));
        b.commit().unwrap();
        let report = store.compact(2).unwrap();
        assert_eq!(report.merged, 2, "only the sub-threshold segments merge");
        assert!(big.exists(), "4-row segment survives a 2-row threshold");
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn compact_cleans_stale_tmp_files_from_other_pids() {
        let dir = scratch("compact-tmp");
        let store = Store::open(&dir).unwrap();
        let mut b = store.batch();
        b.push(row("c", "r1", 1.0));
        b.commit().unwrap();
        // A crashed *other* process left a half-written temp file; our own
        // pid's temp file may belong to a live writer thread.
        let stale = dir.join(".tmp-seg-dead.hsc-1");
        let ours = dir.join(format!(".tmp-seg-beef.hsc-{}", std::process::id()));
        std::fs::write(&stale, b"partial").unwrap();
        std::fs::write(&ours, b"partial").unwrap();
        assert_eq!(store.segment_paths().unwrap().len(), 1, "tmp ignored");
        let report = store.compact(CHUNK_ROWS).unwrap();
        assert_eq!(report.tmp_cleaned, 1);
        assert!(!stale.exists(), "stale foreign tmp swept");
        assert!(ours.exists(), "own-pid tmp kept");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so segment names stay stable across builds.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
